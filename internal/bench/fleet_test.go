package bench

import (
	"encoding/json"
	"io"
	"strings"
	"testing"
)

// TestRunFleetDeterministic: the capacity-curve sweep runs entirely on
// the virtual clock, so two sweeps of the same seed are byte-identical
// once JSON-encoded — the property the checked-in BENCH_fleet.json
// baseline and the -check regression gate rest on.
func TestRunFleetDeterministic(t *testing.T) {
	cfg := QuickConfig()
	first, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if string(a) != string(b) {
		t.Fatalf("two sweeps of seed %d differ:\n%s\n%s", cfg.FleetSeed, a, b)
	}
}

// TestRunFleetMeasuresConvergence: the collector — not scenario
// assertions — proves convergence: staleness peaks above zero right
// after the op phase and reaches exactly zero once every survivor ran
// its refresh round.
func TestRunFleetMeasuresConvergence(t *testing.T) {
	points, err := RunFleet(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	var peaked bool
	for _, p := range points {
		switch {
		case strings.HasSuffix(p.Series, "/stale-peak"):
			if p.Value > 0 {
				peaked = true
			}
		case strings.HasSuffix(p.Series, "/stale-converged"):
			if p.Value != 0 {
				t.Fatalf("%s size=%d: %v stale replicas after refresh round", p.Series, p.Size, p.Value)
			}
		case strings.HasSuffix(p.Series, "/ops"):
			if p.RMICalls == 0 || p.BytesSent == 0 {
				t.Fatalf("%s size=%d: no federated traffic totals", p.Series, p.Size)
			}
		}
	}
	if !peaked {
		t.Fatal("no scenario ever showed staleness — the invalidation signal is dead")
	}
}

// TestCheckGate: the regression gate passes a faithful baseline, fails
// a doctored one with the offending field named, and treats a vanished
// point as a regression.
func TestCheckGate(t *testing.T) {
	cfg := QuickConfig()
	baseline, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	regs, err := Check(baseline, cfg, 1, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("faithful baseline flagged: %v", regs)
	}

	doctored := append([]Point(nil), baseline...)
	for i := range doctored {
		if strings.HasSuffix(doctored[i].Series, "/stale-peak") {
			doctored[i].Value *= 2
			break
		}
	}
	regs, err = Check(doctored, cfg, 1, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Field != "Value" {
		t.Fatalf("doctored baseline: %v", regs)
	}

	vanished := append([]Point(nil), baseline...)
	vanished = append(vanished, Point{Experiment: "fleet", Series: "churn/ops", Size: 9999, X: 9999})
	regs, err = Check(vanished, cfg, 1, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Field != "missing" {
		t.Fatalf("vanished point: %v", regs)
	}
}

// TestCheckRejectsWallClockExperiments: only virtual-clock experiments
// are gateable; a wall-clock baseline is an explicit error, not a flaky
// gate.
func TestCheckRejectsWallClockExperiments(t *testing.T) {
	_, err := Check([]Point{{Experiment: "fig5", Series: "x"}}, QuickConfig(), 5, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "not gateable") {
		t.Fatalf("wall-clock experiment accepted: %v", err)
	}
}
