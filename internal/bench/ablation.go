package bench

import (
	"fmt"
	"time"

	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/transport"
)

// RunAblationMode isolates the incremental vs transitive-closure decision
// of §2.1: for each strategy it reports both the latency until the first
// invocation can run (what incremental replication optimizes: "the latency
// imposed on the application is smaller because the application can invoke
// immediately the new replica") and the total time to walk the whole list.
func RunAblationMode(cfg Config) ([]Point, error) {
	size := cfg.Sizes[0]
	strategies := []struct {
		name string
		spec replication.GetSpec
	}{
		{"incremental batch=1", replication.GetSpec{Mode: replication.Incremental, Batch: 1}},
		{"incremental batch=50", replication.GetSpec{Mode: replication.Incremental, Batch: 50}},
		{"cluster batch=50", replication.GetSpec{Mode: replication.Incremental, Batch: 50, Clustered: true}},
		{"transitive", replication.GetSpec{Mode: replication.Transitive}},
	}
	var points []Point
	for _, s := range strategies {
		e, err := newEnv(cfg.Profile)
		if err != nil {
			return nil, err
		}
		head, err := e.buildList(cfg.ListLen, size)
		if err != nil {
			e.close()
			return nil, err
		}
		ref, err := e.clientRef(head, s.spec)
		if err != nil {
			e.close()
			return nil, err
		}
		start := time.Now()
		if _, err := ref.Invoke("Touch"); err != nil {
			e.close()
			return nil, err
		}
		firstUse := time.Since(start)
		if err := walkList(ref, cfg.ListLen); err != nil {
			e.close()
			return nil, err
		}
		total := time.Since(start)
		points = append(points,
			Point{
				Experiment: "ablation-mode", Series: s.name + " (first use)",
				Size: size, TotalMS: ms(firstUse),
			},
			Point{
				Experiment: "ablation-mode", Series: s.name + " (full walk)",
				Size: size, TotalMS: ms(total),
				RMICalls: e.crt.Stats().CallsSent,
			},
		)
		e.close()
	}
	return points, nil
}

// RunAblationDepth compares count-bounded and depth-bounded dynamic
// clusters ("the application specifies the depth of the partial
// reachability graph that it wants to replicate as a whole") on a binary
// tree, where the two policies ship differently-shaped prefixes.
func RunAblationDepth(cfg Config) ([]Point, error) {
	size := cfg.Sizes[0]
	type strategy struct {
		name string
		spec replication.GetSpec
	}
	var strategies []strategy
	for _, d := range []int{1, 2, 3} {
		strategies = append(strategies, strategy{
			name: fmt.Sprintf("depth=%d", d),
			spec: replication.GetSpec{Mode: replication.Incremental, Batch: 1 << cfg.TreeDepth, Depth: d, Clustered: true},
		})
	}
	for _, b := range []int{1, 7, 15} {
		strategies = append(strategies, strategy{
			name: fmt.Sprintf("count=%d", b),
			spec: replication.GetSpec{Mode: replication.Incremental, Batch: b, Clustered: true},
		})
	}
	var points []Point
	for _, s := range strategies {
		e, err := newEnv(cfg.Profile)
		if err != nil {
			return nil, err
		}
		root, total, err := e.buildTree(cfg.TreeDepth, size)
		if err != nil {
			e.close()
			return nil, err
		}
		ref, err := e.clientRef(root, s.spec)
		if err != nil {
			e.close()
			return nil, err
		}
		start := time.Now()
		visited, err := walkTree(ref)
		if err != nil {
			e.close()
			return nil, err
		}
		elapsed := time.Since(start)
		if visited != total {
			e.close()
			return nil, fmt.Errorf("ablation-depth %s: visited %d of %d", s.name, visited, total)
		}
		points = append(points, Point{
			Experiment: "ablation-depth", Series: s.name, Size: size,
			X: float64(total), TotalMS: ms(elapsed),
			RMICalls:   e.crt.Stats().CallsSent,
			ProxyPairs: e.server.GC().Snapshot().ProxyInsExported,
		})
		e.close()
	}
	return points, nil
}

// RunFig5v6 isolates the clustering delta of §4.2 vs §4.3 at equal batch
// sizes: the per-object proxy pairs are the only difference between the
// two regimes.
func RunFig5v6(cfg Config) ([]Point, error) {
	var points []Point
	size := cfg.Sizes[0]
	for _, step := range cfg.Steps {
		if step <= 1 {
			continue // clustering a single object changes nothing
		}
		for _, clustered := range []bool{false, true} {
			experiment := "fig5v6/per-object"
			if clustered {
				experiment = "fig5v6/clustered"
			}
			p, err := listWalkPoint(cfg, experiment, size, step, clustered)
			if err != nil {
				return nil, err
			}
			points = append(points, p)
		}
	}
	return points, nil
}

// RunAutoCrossover exercises the ModeAuto run-time switch: a reference
// starts over RMI and replicates once the QoS crossover fires; the series
// reports cumulative time per invocation strategy.
func RunAutoCrossover(cfg Config, invocations int) ([]Point, error) {
	strategies := []objmodel.InvocationMode{objmodel.ModeRemote, objmodel.ModeLocal, objmodel.ModeAuto}
	var points []Point
	for _, mode := range strategies {
		e, err := newEnv(cfg.Profile)
		if err != nil {
			return nil, err
		}
		head, err := e.buildList(1, cfg.Sizes[0])
		if err != nil {
			e.close()
			return nil, err
		}
		ref, err := e.clientRef(head, replication.DefaultSpec)
		if err != nil {
			e.close()
			return nil, err
		}
		if mode == objmodel.ModeAuto {
			// Crossover after 2 calls, the qos.Advisor default.
			e.client.SetCrossover(func(_ transport.Addr, _ objmodel.OID, calls uint64) bool {
				return calls >= 2
			})
		}
		ref.SetMode(mode)
		start := time.Now()
		for i := 0; i < invocations; i++ {
			if _, err := ref.Invoke("Touch"); err != nil {
				e.close()
				return nil, err
			}
		}
		total := time.Since(start)
		points = append(points, Point{
			Experiment: "auto-crossover", Series: mode.String(),
			Size: cfg.Sizes[0], X: float64(invocations),
			TotalMS: ms(total), RMICalls: e.crt.Stats().CallsSent,
		})
		e.close()
	}
	return points, nil
}

// RunPrefetch quantifies the paper's footnote 3 — "a perfect mechanism of
// pre-fetching in the background can completely eliminate the latency" —
// by walking the list with per-object application think time, with and
// without a background prefetcher racing ahead of the walk.
func RunPrefetch(cfg Config, thinkTime time.Duration) ([]Point, error) {
	size := cfg.Sizes[0]
	var points []Point
	for _, prefetch := range []bool{false, true} {
		e, err := newEnv(cfg.Profile)
		if err != nil {
			return nil, err
		}
		head, err := e.buildList(cfg.ListLen, size)
		if err != nil {
			e.close()
			return nil, err
		}
		spec := replication.GetSpec{Mode: replication.Incremental, Batch: 1}
		ref, err := e.clientRef(head, spec)
		if err != nil {
			e.close()
			return nil, err
		}
		series := "walk"
		var pf *replication.Prefetcher
		if prefetch {
			series = "walk+prefetch"
			pf = replication.NewPrefetcher(e.client)
			pf.Prefetch(ref, 0)
		}
		start := time.Now()
		cur := ref
		for i := 0; i < cfg.ListLen; i++ {
			if _, err := cur.Invoke("Touch"); err != nil {
				e.close()
				return nil, err
			}
			// The application "works" on each object; the prefetcher uses
			// this time to stay ahead of the walk.
			if thinkTime > 0 {
				time.Sleep(thinkTime)
			}
			node, err := objmodel.Deref[*Node](cur)
			if err != nil {
				e.close()
				return nil, err
			}
			cur = node.Next
		}
		total := time.Since(start)
		if pf != nil {
			pf.Close()
		}
		points = append(points, Point{
			Experiment: "prefetch", Series: series, Size: size,
			X: float64(cfg.ListLen), TotalMS: ms(total),
			RMICalls: e.crt.Stats().CallsSent,
		})
		e.close()
	}
	return points, nil
}
