package bench

import (
	"reflect"
	"testing"

	"obiwan/internal/netsim"
)

// failoverTinyConfig is one seed at minimal scale; the worlds run on the
// virtual clock, so this is fast regardless of the simulated profile.
func failoverTinyConfig() Config {
	return Config{
		Profile:       netsim.LAN10,
		FailoverSeeds: []int64{11},
		FailoverChain: 8,
		FailoverPuts:  4,
	}
}

func TestRunFailoverShape(t *testing.T) {
	cfg := failoverTinyConfig()
	points, err := RunFailover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One elect point per seed plus the four steady-state means.
	if want := len(cfg.FailoverSeeds) + 4; len(points) != want {
		t.Fatalf("got %d points, want %d: %+v", len(points), want, points)
	}
	bySeries := map[string]Point{}
	for _, p := range points {
		bySeries[p.Series] = p
	}
	elect := bySeries["elect"]
	if elect.TotalMS <= 0 || elect.TotalMS > ms(failoverBound) {
		t.Fatalf("elect latency %vms outside (0, %v]", elect.TotalMS, failoverBound)
	}
	// The group's put pays a quorum round the single master doesn't:
	// strictly more simulated time and strictly more bytes on the wire.
	if g, s := bySeries["put group3"], bySeries["put single"]; g.TotalMS <= s.TotalMS || g.BytesSent <= s.BytesSent {
		t.Fatalf("group put (%vms, %dB) not dearer than single (%vms, %dB)",
			g.TotalMS, g.BytesSent, s.TotalMS, s.BytesSent)
	}
	for _, series := range []string{"demand single", "demand group3"} {
		if p := bySeries[series]; p.TotalMS <= 0 || p.RMICalls == 0 {
			t.Fatalf("%s: empty measurement %+v", series, p)
		}
	}
}

func TestRunFailoverDeterministic(t *testing.T) {
	cfg := failoverTinyConfig()
	run1, err := RunFailover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run2, err := RunFailover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run1, run2) {
		t.Fatalf("same-seed rerun diverged:\nrun1: %+v\nrun2: %+v", run1, run2)
	}
}
