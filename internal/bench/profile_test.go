package bench

import (
	"testing"

	"obiwan/internal/netsim"
)

// TestRunHotProfileHeatGradient: the skewed workload makes object 0 the
// hottest; the profiler-derived points and samples must reflect the
// gradient, and the flight dump must carry the run's protocol trail.
func TestRunHotProfileHeatGradient(t *testing.T) {
	cfg := QuickConfig()
	cfg.Profile = netsim.Loopback
	points, samples, dump, err := RunHotProfile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != hotProfileObjects {
		t.Fatalf("points: %d, want %d", len(points), hotProfileObjects)
	}
	// Hottest first: object i refreshes every i+1 rounds, so demand
	// counts are non-increasing across the set, and strictly higher for
	// object 0 than the coldest.
	for i := 1; i < len(points); i++ {
		if points[i].RMICalls > points[i-1].RMICalls {
			t.Fatalf("heat not monotone: obj-%d=%d > obj-%d=%d",
				i, points[i].RMICalls, i-1, points[i-1].RMICalls)
		}
	}
	if points[0].RMICalls <= points[len(points)-1].RMICalls {
		t.Fatalf("no gradient: hottest=%d coldest=%d",
			points[0].RMICalls, points[len(points)-1].RMICalls)
	}
	if points[0].BytesSent == 0 {
		t.Fatal("no demand bytes accounted")
	}
	// One sample per object per round, plus the round-0 baseline.
	if want := hotProfileObjects * (hotProfileRounds + 1); len(samples) != want {
		t.Fatalf("samples: %d, want %d", len(samples), want)
	}
	if dump == nil || len(dump.Events) == 0 {
		t.Fatal("empty flight dump")
	}
}
