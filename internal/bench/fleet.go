package bench

import (
	"fmt"
	"time"

	"obiwan/internal/swarm"
)

// The fleet experiment sweeps the swarm's churn and flash-crowd scenarios
// across leaf counts (DefaultConfig: 50, 200, 500, 1000) in observatory
// mode: every leaf carries a virtual-clocked telemetry hub and the hub's
// fleet.Collector — not the scenario's own assertions — measures staleness
// and convergence by federating the roster's metrics (see
// swarm.FleetObservation). Everything runs on the virtual clock, so the
// checked-in BENCH_fleet.json baseline is a deterministic function of
// Config.FleetSeed; drift in it is a real capacity change, not noise.

// RunFleet produces the capacity curves: for each scenario and leaf count,
// one point per measured series.
//
//	<scenario>/ops        simulated cost of the run: TotalMS is virtual
//	                      milliseconds simulated, PerOpUS virtual
//	                      microseconds per fleet op, RMICalls/BytesSent the
//	                      collector's federated traffic totals
//	<scenario>/stale-peak       Value: stale replicas fleet-wide right
//	                            after the op phase (staleness high-water)
//	<scenario>/stale-converged  Value: stale replicas after every survivor
//	                            ran its refresh round (must reach 0 — the
//	                            collector's convergence proof)
//	<scenario>/rmi-p99us        Value: federated p99 of rmi.call.latency_ns
//	                            in virtual microseconds
//	<scenario>/alerts           Value: SLO watchdog alerts fired
func RunFleet(cfg Config) ([]Point, error) {
	if len(cfg.FleetSizes) == 0 {
		return nil, fmt.Errorf("bench: no fleet sizes configured")
	}
	scenarios := []struct {
		name string
		run  func(swarm.Options) (*swarm.Report, []string, error)
	}{
		{"churn", swarm.Churn},
		{"flash-crowd", swarm.FlashCrowd},
	}
	var points []Point
	for _, sc := range scenarios {
		for _, sites := range cfg.FleetSizes {
			o := swarm.Defaults(cfg.FleetSeed)
			o.Sites = sites
			o.Duration = cfg.FleetDuration
			o.Observe = true
			report, _, err := sc.run(o)
			if err != nil {
				return nil, fmt.Errorf("fleet %s sites=%d: %w", sc.name, sites, err)
			}
			obs := report.Fleet
			if obs == nil {
				return nil, fmt.Errorf("fleet %s sites=%d: no collector observation in report", sc.name, sites)
			}
			pt := func(series string) Point {
				return Point{Experiment: "fleet", Series: sc.name + "/" + series,
					Size: sites, X: float64(sites)}
			}
			ops := pt("ops")
			ops.TotalMS = report.SimSeconds * 1e3
			if report.Ops > 0 {
				ops.PerOpUS = report.SimSeconds * float64(time.Second/time.Microsecond) / float64(report.Ops)
			}
			ops.RMICalls = obs.Converged.RMICalls
			ops.BytesSent = obs.Converged.BytesSent
			stalePeak := pt("stale-peak")
			stalePeak.Value = float64(obs.AfterOps.StaleReplicas)
			staleConv := pt("stale-converged")
			staleConv.Value = float64(obs.Converged.StaleReplicas)
			p99 := pt("rmi-p99us")
			p99.Value = obs.Converged.RMIP99US
			alerts := pt("alerts")
			alerts.Value = float64(obs.Alerts)
			points = append(points, ops, stalePeak, staleConv, p99, alerts)
		}
	}
	return points, nil
}
