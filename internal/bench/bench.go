// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§4) on the simulated testbed.
//
//   - Table 1 (§4.1 text): per-invocation cost of LMI vs RMI.
//   - Figure 4: total cost of RMI vs LMI over invocation count, per object
//     size; LMI includes replica creation and the final put-back.
//   - Figure 5: incremental replication of a 1000-object list without
//     clustering (a proxy pair per object), over replication step sizes.
//   - Figure 6: the same with clustering (one proxy pair per cluster).
//
// Plus the ablations DESIGN.md calls out (incremental vs transitive,
// count- vs depth-bounded clusters). Each experiment point runs in a fresh
// simulated deployment so link occupancy and runtime state never leak
// between points.
package bench

import (
	"fmt"
	"time"

	"obiwan/internal/heap"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

// Node is the benchmark workload object: a payload of configurable size
// plus the references that shape the graph (list or tree).
type Node struct {
	Payload []byte
	Next    *objmodel.Ref
	Kids    []*objmodel.Ref
}

// Touch reads a field, so the invocation is not empty — mirroring the
// paper's footnote: "this method performs an access to a variable of the
// object, so it is not an empty method".
func (n *Node) Touch() int { return len(n.Payload) }

// SetPayload overwrites the payload (used by update-path experiments).
func (n *Node) SetPayload(p []byte) { n.Payload = p }

func init() {
	objmodel.MustRegisterType("obiwan.bench.Node", (*Node)(nil))
}

// Config parameterizes the experiments. DefaultConfig reproduces the
// paper's reconstructed parameters (see DESIGN.md).
type Config struct {
	// Profile is the link model between the two sites.
	Profile netsim.Profile
	// ListLen is the length of the figure-5/6 list.
	ListLen int
	// Sizes are the figure-5/6 object sizes in bytes.
	Sizes []int
	// Steps are the figure-5/6 replication step / cluster sizes.
	Steps []int
	// Fig4Sizes are the figure-4 object sizes.
	Fig4Sizes []int
	// Invocations are the figure-4 invocation counts.
	Invocations []int
	// TreeDepth is the depth of the ablation tree workload.
	TreeDepth int
	// FailoverSeeds are the virtual-clock world seeds for the failover
	// experiment (one 3-site-group + single-master world pair per seed).
	FailoverSeeds []int64
	// FailoverChain and FailoverPuts size the failover steady-state
	// workload: chain length demanded, head edits synced.
	FailoverChain int
	FailoverPuts  int

	// FleetSeed seeds the capacity-curve sweep worlds; FleetSizes are the
	// leaf counts swept; FleetDuration is each run's simulated op phase.
	FleetSeed     int64
	FleetSizes    []int
	FleetDuration time.Duration
}

// DefaultConfig returns the paper-scale parameters on the calibrated
// 10 Mb/s LAN.
func DefaultConfig() Config {
	return Config{
		Profile:     netsim.LAN10,
		ListLen:     1000,
		Sizes:       []int{64, 1024, 16 * 1024},
		Steps:       []int{1, 10, 50, 100, 500, 1000},
		Fig4Sizes:   []int{16, 1024, 4096, 16 * 1024, 64 * 1024},
		Invocations: []int{1, 10, 100, 1000, 10000},
		TreeDepth:   7,

		FailoverSeeds: []int64{11, 12, 13, 14, 15},
		FailoverChain: 50,
		FailoverPuts:  30,

		FleetSeed:     7,
		FleetSizes:    []int{50, 200, 500, 1000},
		FleetDuration: 8 * time.Second,
	}
}

// QuickConfig returns a scaled-down variant for smoke tests and testing.B
// benchmarks: same shape, two orders of magnitude faster.
func QuickConfig() Config {
	return Config{
		Profile:     netsim.LAN10,
		ListLen:     100,
		Sizes:       []int{64, 1024},
		Steps:       []int{1, 10, 100},
		Fig4Sizes:   []int{16, 4096},
		Invocations: []int{1, 10, 100},
		TreeDepth:   5,

		FailoverSeeds: []int64{11, 12},
		FailoverChain: 12,
		FailoverPuts:  6,

		FleetSeed:     7,
		FleetSizes:    []int{10, 25},
		FleetDuration: 4 * time.Second,
	}
}

// Point is one measured experiment point.
type Point struct {
	// Experiment identifies the figure/table ("table1", "fig4", ...).
	Experiment string
	// Series labels the curve the point belongs to (e.g. "LMI 1024B").
	Series string
	// Size is the object payload size in bytes.
	Size int
	// Step is the replication step / cluster size (figures 5–6).
	Step int
	// X is the x-coordinate in the paper's plot (invocation count for
	// figure 4, step size for figures 5–6).
	X float64
	// TotalMS is the measured wall-clock cost in milliseconds.
	TotalMS float64
	// PerOpUS is the per-invocation cost in microseconds.
	PerOpUS float64
	// RMICalls counts remote calls issued by the client during the point.
	RMICalls uint64
	// BytesSent counts client+server bytes put on the wire.
	BytesSent uint64
	// ProxyPairs counts proxy-ins exported at the master during the point.
	ProxyPairs uint64
	// Value is the y-figure of series whose unit fits none of the fields
	// above (fleet staleness counts, alert counts, federated quantiles).
	// omitempty keeps older baselines (BENCH_failover.json) byte-stable.
	Value float64 `json:",omitempty"`
}

// env is one fresh two-site deployment.
type env struct {
	net    *transport.MemNetwork
	srt    *rmi.Runtime
	crt    *rmi.Runtime
	server *replication.Engine
	client *replication.Engine
}

// newEnv builds a fresh deployment over profile.
func newEnv(profile netsim.Profile) (*env, error) {
	net := transport.NewMemNetwork(profile)
	srt, err := rmi.NewRuntime(net, "s2")
	if err != nil {
		return nil, err
	}
	crt, err := rmi.NewRuntime(net, "s1")
	if err != nil {
		_ = srt.Close()
		return nil, err
	}
	return &env{
		net:    net,
		srt:    srt,
		crt:    crt,
		server: replication.NewEngine(srt, heap.New(2)),
		client: replication.NewEngine(crt, heap.New(1)),
	}, nil
}

func (e *env) close() {
	_ = e.crt.Close()
	_ = e.srt.Close()
}

// buildList creates the master list at the server and returns its head.
func (e *env) buildList(n, size int) (*Node, error) {
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = &Node{Payload: make([]byte, size)}
		if _, err := e.server.RegisterMaster(nodes[i]); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n-1; i++ {
		ref, err := e.server.NewRef(nodes[i+1])
		if err != nil {
			return nil, err
		}
		nodes[i].Next = ref
	}
	return nodes[0], nil
}

// buildTree creates a complete binary tree of the given depth (depth 1 =
// just the root) and returns the root and total node count.
func (e *env) buildTree(depth, size int) (*Node, int, error) {
	var build func(d int) (*Node, int, error)
	build = func(d int) (*Node, int, error) {
		node := &Node{Payload: make([]byte, size)}
		if _, err := e.server.RegisterMaster(node); err != nil {
			return nil, 0, err
		}
		count := 1
		if d > 1 {
			for i := 0; i < 2; i++ {
				child, c, err := build(d - 1)
				if err != nil {
					return nil, 0, err
				}
				ref, err := e.server.NewRef(child)
				if err != nil {
					return nil, 0, err
				}
				node.Kids = append(node.Kids, ref)
				count += c
			}
		}
		return node, count, nil
	}
	return build(depth)
}

// clientRef exports head at the server and returns the client's faulting
// reference with spec.
func (e *env) clientRef(head *Node, spec replication.GetSpec) (*objmodel.Ref, error) {
	d, err := e.server.ExportObject(head)
	if err != nil {
		return nil, err
	}
	return e.client.RefFromDescriptor(d, spec), nil
}

// walkList invokes Touch on each of the n list elements through the
// reference chain, faulting objects in as the spec dictates.
func walkList(ref *objmodel.Ref, n int) error {
	cur := ref
	for i := 0; i < n; i++ {
		if cur == nil {
			return fmt.Errorf("bench: list ended at %d of %d", i, n)
		}
		if _, err := cur.Invoke("Touch"); err != nil {
			return fmt.Errorf("bench: invoke %d: %w", i, err)
		}
		node, err := objmodel.Deref[*Node](cur)
		if err != nil {
			return err
		}
		cur = node.Next
	}
	return nil
}

// walkTree invokes Touch on every node of the tree, breadth-first.
func walkTree(root *objmodel.Ref) (int, error) {
	queue := []*objmodel.Ref{root}
	visited := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if _, err := cur.Invoke("Touch"); err != nil {
			return visited, err
		}
		visited++
		node, err := objmodel.Deref[*Node](cur)
		if err != nil {
			return visited, err
		}
		queue = append(queue, node.Kids...)
	}
	return visited, nil
}

// sizeLabel formats a byte size the way the paper's series are labelled.
func sizeLabel(size int) string {
	switch {
	case size >= 1024 && size%1024 == 0:
		return fmt.Sprintf("%dKB", size/1024)
	default:
		return fmt.Sprintf("%dB", size)
	}
}
