package bench

import (
	"fmt"
	"time"

	"obiwan/internal/heap"
	"obiwan/internal/plot"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// hotProfileObjects is the size of the skewed working set: object i is
// refreshed every i+1 rounds, so object 0 is the hottest and the heat
// falls off harmonically — a small, legible zipf-ish gradient.
const hotProfileObjects = 8

// hotProfileRounds is the number of refresh rounds driven over the set.
const hotProfileRounds = 12

// RunHotProfile drives a deliberately skewed refresh workload over a
// hub-bearing deployment and reads the result back out of the client
// site's per-object replication profiler. It returns one summary Point
// per object (hottest first), the per-round profiler samples that feed
// the hot-object report (plot.HotObjectCharts), and the client's live
// flight-recorder dump — the protocol trail of the run, written out as
// a bench artifact.
func RunHotProfile(cfg Config) ([]Point, []plot.HotSample, *telemetry.FlightDump, error) {
	net := transport.NewMemNetwork(cfg.Profile)
	serverHub := telemetry.NewHub("s2")
	clientHub := telemetry.NewHub("s1")
	srt, err := rmi.NewRuntime(net, "s2", rmi.WithTelemetry(serverHub))
	if err != nil {
		return nil, nil, nil, err
	}
	crt, err := rmi.NewRuntime(net, "s1", rmi.WithTelemetry(clientHub))
	if err != nil {
		_ = srt.Close()
		return nil, nil, nil, err
	}
	defer func() {
		_ = crt.Close()
		_ = srt.Close()
	}()
	server := replication.NewEngine(srt, heap.New(2), replication.WithTelemetry(serverHub))
	client := replication.NewEngine(crt, heap.New(1), replication.WithTelemetry(clientHub))

	size := 64
	if len(cfg.Sizes) > 0 {
		size = cfg.Sizes[0]
	}
	spec := replication.GetSpec{Mode: replication.Incremental, Batch: 1}

	// Replicate the whole working set once (the initial faults), keeping
	// the materialized replicas so refreshes can target them.
	oids := make([]uint64, hotProfileObjects)
	labels := make([]string, hotProfileObjects)
	replicas := make([]any, hotProfileObjects)
	for i := 0; i < hotProfileObjects; i++ {
		master := &Node{Payload: make([]byte, size)}
		if _, err := server.RegisterMaster(master); err != nil {
			return nil, nil, nil, err
		}
		d, err := server.ExportObject(master)
		if err != nil {
			return nil, nil, nil, err
		}
		oids[i] = uint64(d.OID)
		labels[i] = fmt.Sprintf("obj-%d (1/%d rounds)", i, i+1)
		obj, err := client.Replicate(client.RefFromDescriptor(d, spec), spec)
		if err != nil {
			return nil, nil, nil, err
		}
		replicas[i] = obj
	}

	// The skewed rounds: object i refreshes when round%(i+1)==0. Sample
	// the client profiler after every round — the samples are cumulative,
	// so each object traces a staircase whose slope is its heat.
	var samples []plot.HotSample
	sample := func(round int) {
		snap := clientHub.ProfileSnapshot(0)
		for i, oid := range oids {
			p, _ := snap.Get(oid)
			samples = append(samples, plot.HotSample{
				AtMS:    float64(round),
				OID:     oid,
				Label:   labels[i],
				Demands: p.RemoteDemands,
				Bytes:   p.DemandBytes,
			})
		}
	}
	sample(0)
	for round := 1; round <= hotProfileRounds; round++ {
		for i := range replicas {
			if (round-1)%(i+1) != 0 {
				continue
			}
			if err := client.Refresh(replicas[i]); err != nil {
				return nil, nil, nil, fmt.Errorf("round %d obj %d: %w", round, i, err)
			}
		}
		sample(round)
	}

	// Summary points, hottest object first, read straight off the final
	// profiler snapshot.
	final := clientHub.ProfileSnapshot(0)
	points := make([]Point, 0, hotProfileObjects)
	for i, oid := range oids {
		p, ok := final.Get(oid)
		if !ok {
			return nil, nil, nil, fmt.Errorf("no profile for object %d (%#x)", i, oid)
		}
		points = append(points, Point{
			Experiment: "profile",
			Series:     labels[i],
			Size:       size,
			X:          float64(i),
			TotalMS:    ms(time.Duration(p.FaultNS)),
			PerOpUS:    us(time.Duration(p.AvgFaultNS())),
			RMICalls:   p.RemoteDemands,
			BytesSent:  p.DemandBytes,
		})
	}
	return points, samples, clientHub.Flight().Current("bench hot-profile run"), nil
}
