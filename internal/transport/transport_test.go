package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"obiwan/internal/netsim"
)

// echoServer accepts one connection and echoes messages until close.
func echoServer(t *testing.T, ln Listener) {
	t.Helper()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		for {
			msg, err := conn.Recv()
			if err != nil {
				return
			}
			if err := conn.Send(msg); err != nil {
				return
			}
		}
	}()
}

func testNetworkEcho(t *testing.T, net Network, serverAddr, clientAddr Addr) {
	t.Helper()
	ln, err := net.Listen(serverAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)

	conn, err := net.Dial(clientAddr, ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	for i := 0; i < 10; i++ {
		msg := []byte(fmt.Sprintf("message-%d", i))
		if err := conn.Send(msg); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		got, err := conn.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("echo %d: got %q want %q", i, got, msg)
		}
	}
}

func TestMemNetworkEcho(t *testing.T) {
	testNetworkEcho(t, NewMemNetwork(netsim.Loopback), "server", "client")
}

func TestTCPNetworkEcho(t *testing.T) {
	testNetworkEcho(t, NewTCPNetwork(), "127.0.0.1:0", "")
}

func TestMemDialUnknownAddr(t *testing.T) {
	n := NewMemNetwork(netsim.Loopback)
	if _, err := n.Dial("a", "nowhere"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
}

func TestMemDoubleBindRejected(t *testing.T) {
	n := NewMemNetwork(netsim.Loopback)
	if _, err := n.Listen("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("x"); err == nil {
		t.Fatal("second bind should fail")
	}
}

func TestMemListenerCloseUnblocksAccept(t *testing.T) {
	n := NewMemNetwork(netsim.Loopback)
	ln, err := n.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	ln.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept did not unblock on Close")
	}
}

func TestMemRebindAfterClose(t *testing.T) {
	n := NewMemNetwork(netsim.Loopback)
	ln, err := n.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close()
	if _, err := n.Listen("x"); err != nil {
		t.Fatalf("rebinding closed address should work: %v", err)
	}
}

func TestMemFIFOOrdering(t *testing.T) {
	n := NewMemNetwork(netsim.Profile{
		Name: "jittery", Latency: time.Millisecond,
		Jitter: 2 * time.Millisecond, BandwidthBps: 1 << 20,
	})
	ln, err := n.Listen("s")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := n.Dial("c", "s")
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted

	const msgs = 50
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			if err := client.Send([]byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < msgs; i++ {
		got, err := server.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("out of order: got %d at position %d", got[0], i)
		}
	}
	wg.Wait()
}

func TestMemDisconnectAndReconnect(t *testing.T) {
	n := NewMemNetwork(netsim.Loopback)
	ln, err := n.Listen("s")
	if err != nil {
		t.Fatal(err)
	}
	echoServer(t, ln)
	conn, err := n.Dial("c", "s")
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("up")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil {
		t.Fatal(err)
	}

	n.Disconnect("c", "s")
	if err := conn.Send([]byte("down")); !errors.Is(err, netsim.ErrDisconnected) {
		t.Fatalf("want ErrDisconnected, got %v", err)
	}

	n.Reconnect("c", "s")
	if err := conn.Send([]byte("up again")); err != nil {
		t.Fatalf("reconnected send: %v", err)
	}
	got, err := conn.Recv()
	if err != nil || string(got) != "up again" {
		t.Fatalf("after reconnect: %q, %v", got, err)
	}
}

func TestMemPartitionHost(t *testing.T) {
	n := NewMemNetwork(netsim.Loopback)
	ln, _ := n.Listen("s")
	echoServer(t, ln)
	conn, err := n.Dial("mobile", "s")
	if err != nil {
		t.Fatal(err)
	}
	n.PartitionHost("mobile")
	if err := conn.Send([]byte("x")); !errors.Is(err, netsim.ErrDisconnected) {
		t.Fatalf("partitioned host should not send, got %v", err)
	}
	if _, err := n.Dial("mobile", "s"); !errors.Is(err, netsim.ErrDisconnected) {
		t.Fatalf("partitioned host should not dial, got %v", err)
	}
	n.HealHost("mobile")
	if err := conn.Send([]byte("x")); err != nil {
		t.Fatalf("healed host should send: %v", err)
	}
}

func TestMemLatencyIsRealized(t *testing.T) {
	p := netsim.Profile{Name: "slow", Latency: 20 * time.Millisecond}
	n := NewMemNetwork(p)
	ln, _ := n.Listen("s")
	echoServer(t, ln)
	conn, err := n.Dial("c", "s")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := conn.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 40*time.Millisecond {
		t.Fatalf("round trip %v, want >= 40ms (2 x one-way latency)", rtt)
	}
}

func TestMemLinkStats(t *testing.T) {
	n := NewMemNetwork(netsim.Loopback)
	ln, _ := n.Listen("s")
	echoServer(t, ln)
	conn, err := n.Dial("c", "s")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	if err := conn.Send(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil {
		t.Fatal(err)
	}
	if s := n.LinkStats("c", "s"); s.Messages != 1 || s.Bytes != 100 {
		t.Fatalf("c->s stats: %+v", s)
	}
	if s := n.LinkStats("s", "c"); s.Messages != 1 || s.Bytes != 100 {
		t.Fatalf("s->c stats: %+v", s)
	}
}

func TestMemCloseUnblocksRecv(t *testing.T) {
	n := NewMemNetwork(netsim.Loopback)
	ln, _ := n.Listen("s")
	go func() {
		c, err := ln.Accept()
		if err == nil {
			defer c.Close()
			_, _ = c.Recv() // block until client closes
		}
	}()
	conn, err := n.Dial("c", "s")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := conn.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	conn.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestMemBufferedMessagesDrainAfterClose(t *testing.T) {
	n := NewMemNetwork(netsim.Loopback)
	ln, _ := n.Listen("s")
	accepted := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := n.Dial("c", "s")
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	if err := client.Send([]byte("in flight")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	client.Close()
	got, err := server.Recv()
	if err != nil || string(got) != "in flight" {
		t.Fatalf("in-flight message lost: %q, %v", got, err)
	}
	if _, err := server.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("after drain, want ErrClosed, got %v", err)
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	n := NewMemNetwork(netsim.Profile{Name: "delay", Latency: 20 * time.Millisecond})
	ln, _ := n.Listen("s")
	accepted := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := n.Dial("c", "s")
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	buf := []byte("original")
	if err := client.Send(buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "CLOBBER!") // mutate after send, before delivery
	got, err := server.Recv()
	if err != nil || string(got) != "original" {
		t.Fatalf("Send must copy: got %q, %v", got, err)
	}
}

func TestOversizedMessageRejected(t *testing.T) {
	n := NewMemNetwork(netsim.Loopback)
	ln, _ := n.Listen("s")
	accepted := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := n.Dial("c", "s")
	if err != nil {
		t.Fatal(err)
	}
	<-accepted
	huge := make([]byte, MaxMessageSize+1)
	if err := conn.Send(huge); err == nil {
		t.Fatal("oversized message must be rejected")
	}
}

func TestTCPLargeMessage(t *testing.T) {
	n := NewTCPNetwork()
	ln, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)
	conn, err := n.Dial("", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := bytes.Repeat([]byte{0xAB}, 1<<20)
	if err := conn.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("1MB echo mismatch")
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	n := NewTCPNetwork()
	ln, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			c.Close()
		}
	}()
	conn, err := n.Dial("", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}
