package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPNetwork implements Network over real TCP sockets with 4-byte
// length-delimited frames. It lets the same OBIWAN code run as separate OS
// processes (cmd/nameserver, multi-process examples) instead of inside the
// simulated network.
type TCPNetwork struct{}

// NewTCPNetwork returns a TCP-backed Network.
func NewTCPNetwork() *TCPNetwork { return &TCPNetwork{} }

var _ Network = (*TCPNetwork)(nil)

// Listen binds a TCP listener at local ("host:port"; ":0" picks a free
// port — read the chosen address back with Listener.Addr).
func (n *TCPNetwork) Listen(local Addr) (Listener, error) {
	ln, err := net.Listen("tcp", string(local))
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", local, err)
	}
	return &tcpListener{ln: ln}, nil
}

// Dial connects to remote. The local address is ignored; the kernel picks.
func (n *TCPNetwork) Dial(_, remote Addr) (Conn, error) {
	c, err := net.Dial("tcp", string(remote))
	if err != nil {
		return nil, fmt.Errorf("%w: dial %q: %v", ErrUnreachable, remote, err)
	}
	return newTCPConn(c), nil
}

type tcpListener struct {
	ln net.Listener
}

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return newTCPConn(c), nil
}

func (l *tcpListener) Close() error { return l.ln.Close() }

func (l *tcpListener) Addr() Addr { return Addr(l.ln.Addr().String()) }

// tcpConn frames messages as [uint32 big-endian length][payload].
type tcpConn struct {
	c       net.Conn
	sendMu  sync.Mutex
	recvMu  sync.Mutex
	hdrBuf  [4]byte
	sendHdr [4]byte
}

func newTCPConn(c net.Conn) *tcpConn { return &tcpConn{c: c} }

func (t *tcpConn) Send(p []byte) error {
	if err := validateSize(len(p)); err != nil {
		return err
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	binary.BigEndian.PutUint32(t.sendHdr[:], uint32(len(p)))
	if _, err := t.c.Write(t.sendHdr[:]); err != nil {
		return t.mapErr(err)
	}
	if _, err := t.c.Write(p); err != nil {
		return t.mapErr(err)
	}
	return nil
}

func (t *tcpConn) Recv() ([]byte, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if _, err := io.ReadFull(t.c, t.hdrBuf[:]); err != nil {
		return nil, t.mapErr(err)
	}
	n := binary.BigEndian.Uint32(t.hdrBuf[:])
	if err := validateSize(int(n)); err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(t.c, buf); err != nil {
		return nil, t.mapErr(err)
	}
	return buf, nil
}

func (t *tcpConn) mapErr(err error) error {
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrClosed
	}
	return err
}

func (t *tcpConn) Close() error { return t.c.Close() }

func (t *tcpConn) RemoteAddr() Addr { return Addr(t.c.RemoteAddr().String()) }
func (t *tcpConn) LocalAddr() Addr  { return Addr(t.c.LocalAddr().String()) }
