// Package transport provides the message-oriented networking layer OBIWAN
// sites communicate over.
//
// Two interchangeable implementations exist:
//
//   - MemNetwork: an in-process network whose links are modelled by
//     package netsim. This is the default substrate for experiments: it
//     reproduces the paper's 10 Mb/s-LAN cost regime and supports the
//     disconnections that motivate the mobility scenario.
//   - TCPNetwork: real TCP with length-delimited frames, for running sites
//     as separate OS processes (examples and integration tests).
//
// Both deliver whole messages reliably and in FIFO order per connection,
// which is what Java RMI's TCP transport gave the original prototype.
package transport

import (
	"errors"
	"fmt"
	"io"
	"net"

	"obiwan/internal/netsim"
)

// Addr identifies an endpoint. For MemNetwork it is a site name such as
// "s1"; for TCPNetwork it is a "host:port" pair.
type Addr string

// ErrClosed is returned by operations on a closed connection or listener.
var ErrClosed = errors.New("transport: closed")

// ErrUnreachable is returned when no listener exists at the dialed address.
var ErrUnreachable = errors.New("transport: unreachable")

// MaxMessageSize bounds a single framed message (64 MiB). The largest
// experiment payload — a transitive closure of 1000 objects of 16 KiB — is
// about 16 MiB; the bound exists to fail fast on corrupt length prefixes,
// not to constrain legitimate replication.
const MaxMessageSize = 64 << 20

// Conn is a reliable, ordered, message-oriented connection.
//
// Send and Recv may be used concurrently with each other, but at most one
// goroutine may call Send and one may call Recv at a time.
type Conn interface {
	// Send transmits one message. It blocks for the link's transmission
	// time (flow control) but not for propagation.
	Send(p []byte) error
	// Recv returns the next message, blocking until one arrives or the
	// connection closes.
	Recv() ([]byte, error)
	// Close releases the connection. Pending Recv calls return ErrClosed
	// once buffered messages are drained.
	Close() error
	// RemoteAddr returns the peer's address.
	RemoteAddr() Addr
	// LocalAddr returns this end's address.
	LocalAddr() Addr
}

// Listener accepts inbound connections at a fixed address.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() Addr
}

// Network creates listeners and outbound connections.
type Network interface {
	// Listen binds a listener at local.
	Listen(local Addr) (Listener, error)
	// Dial connects from local to remote. TCP implementations may ignore
	// local; the simulated network uses it to select the link model.
	Dial(local, remote Addr) (Conn, error)
}

// IsTransient classifies a transport-level error as retryable: the failure
// is a property of the moment (a dropped frame, a link that is down, a peer
// that is restarting) rather than of the request, so retrying the same
// operation later can legitimately succeed. This is the paper's mobility
// model made explicit: disconnection is an expected, recoverable state, not
// a terminal fault. Fatal errors — oversized messages, protocol violations —
// return false and must surface to the caller unchanged.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, netsim.ErrDropped) ||
		errors.Is(err, netsim.ErrDisconnected) ||
		errors.Is(err, ErrUnreachable) ||
		errors.Is(err, ErrClosed) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var nerr net.Error
	if errors.As(err, &nerr) {
		// All remaining net.Errors of interest (timeouts, refused or reset
		// connections while a peer restarts) are worth a retry.
		return true
	}
	return false
}

// validateSize rejects messages that exceed the framing limit.
func validateSize(n int) error {
	if n > MaxMessageSize {
		return fmt.Errorf("transport: message of %d bytes exceeds limit %d", n, MaxMessageSize)
	}
	return nil
}
