package transport

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"obiwan/internal/netsim"
)

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{netsim.ErrDropped, true},
		{netsim.ErrDisconnected, true},
		{ErrUnreachable, true},
		{ErrClosed, true},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{fmt.Errorf("wrapped: %w", netsim.ErrDisconnected), true},
		{fmt.Errorf("wrapped: %w", ErrUnreachable), true},
		{errors.New("transport: message of 9 bytes exceeds limit 8"), false},
		{errors.New("some application error"), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// echoAccept serves one listener, echoing every received message. When the
// listener closes, every served connection is closed too (a real server
// going away takes its sockets with it).
func echoAccept(ln Listener) {
	var conns []Conn
	for {
		conn, err := ln.Accept()
		if err != nil {
			for _, c := range conns {
				_ = c.Close()
			}
			return
		}
		conns = append(conns, conn)
		go func() {
			for {
				p, err := conn.Recv()
				if err != nil {
					return
				}
				if err := conn.Send(p); err != nil {
					return
				}
			}
		}()
	}
}

func TestReconnectingConnHealsAfterListenerRestart(t *testing.T) {
	net := NewMemNetwork(netsim.Loopback)
	ln, err := net.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go echoAccept(ln)

	var preambles atomic.Int32
	conn, err := NewReconnecting(net, "cli", "srv", func(c Conn) error {
		preambles.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := conn.Send([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if p, err := conn.Recv(); err != nil || string(p) != "one" {
		t.Fatalf("echo: %q %v", p, err)
	}

	// Kill the server; the wrapper cannot heal while nothing listens.
	_ = ln.Close()
	var sendErr error
	for i := 0; i < 1000; i++ {
		// The close races one buffered send; drain until the failure
		// surfaces.
		if sendErr = conn.Send([]byte("void")); sendErr != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(sendErr, ErrUnreachable) {
		t.Fatalf("send with no listener: %v", sendErr)
	}

	// Restart the listener at the same address: the next send redials and
	// replays the preamble.
	ln2, err := net.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	go echoAccept(ln2)

	if err := conn.Send([]byte("two")); err != nil {
		t.Fatalf("send after restart: %v", err)
	}
	if p, err := conn.Recv(); err != nil || string(p) != "two" {
		t.Fatalf("echo after restart: %q %v", p, err)
	}
	if n := preambles.Load(); n < 2 {
		t.Fatalf("preamble ran %d times, want >= 2", n)
	}
}

// TestReconnectingConnDoesNotRedialOnLinkDown: a link-level disconnection
// must surface to the caller with the connection kept — the paper's mobile
// host reuses its connection after the outage.
func TestReconnectingConnDoesNotRedialOnLinkDown(t *testing.T) {
	net := NewMemNetwork(netsim.Loopback)
	ln, err := net.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go echoAccept(ln)

	var dials atomic.Int32
	conn, err := NewReconnecting(net, "cli", "srv", func(Conn) error {
		dials.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	net.Disconnect("cli", "srv")
	if err := conn.Send([]byte("x")); !errors.Is(err, netsim.ErrDisconnected) {
		t.Fatalf("send while down: %v", err)
	}
	net.Reconnect("cli", "srv")
	if err := conn.Send([]byte("y")); err != nil {
		t.Fatalf("send after link reconnect: %v", err)
	}
	if p, err := conn.Recv(); err != nil || string(p) != "y" {
		t.Fatalf("echo: %q %v", p, err)
	}
	if dials.Load() != 1 {
		t.Fatalf("dialed %d times, want 1 (no redial on link outage)", dials.Load())
	}
}

func TestReconnectingConnCloseIsTerminal(t *testing.T) {
	net := NewMemNetwork(netsim.Loopback)
	ln, err := net.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go echoAccept(ln)

	conn, err := NewReconnecting(net, "cli", "srv", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if _, err := conn.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close: %v", err)
	}
}

// TestSeededNetworkLossDeterministic: identically seeded networks drop the
// same messages on the same links, independent of link creation order.
func TestSeededNetworkLossDeterministic(t *testing.T) {
	lossy := netsim.Profile{Name: "lossy", LossRate: 0.5}
	run := func(seed int64, warmOtherLinkFirst bool) []bool {
		net := NewMemNetworkSeeded(lossy, seed)
		if warmOtherLinkFirst {
			// Creating unrelated links first must not shift a→b's stream.
			net.link("x", "y")
			net.link("y", "x")
		}
		l := net.link("a", "b")
		outcome := make([]bool, 64)
		for i := range outcome {
			_, err := l.Plan(8)
			outcome[i] = err == nil
		}
		return outcome
	}
	base := run(7, false)
	same := run(7, true)
	for i := range base {
		if base[i] != same[i] {
			t.Fatalf("send %d diverged under identical seed", i)
		}
	}
	diff := run(8, false)
	equal := true
	for i := range base {
		if base[i] != diff[i] {
			equal = false
			break
		}
	}
	if equal {
		t.Fatal("different seeds produced identical loss patterns")
	}
}
