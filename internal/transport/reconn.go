package transport

import (
	"errors"
	"fmt"
	"sync"

	"obiwan/internal/netsim"
)

// reconnConn is a Conn that re-establishes its underlying connection when
// it fails terminally (ErrClosed — the peer went away or the socket died).
// Link-level disconnections (netsim.ErrDisconnected) are NOT redial
// triggers: the paper's mobile host keeps its connection across a network
// outage and reuses it after reconnecting, so those errors propagate to the
// caller, whose retry policy decides when to try again.
//
// Redials are single-flight: concurrent Send and Recv failures against the
// same underlying connection produce one dial, identified by a generation
// counter. onConnect runs after every successful (re)dial — the RMI layer
// uses it to replay the protocol preamble the server expects as the first
// frame of every connection.
type reconnConn struct {
	net       Network
	local     Addr
	remote    Addr
	onConnect func(Conn) error
	onRedial  func()

	mu     sync.Mutex
	conn   Conn
	gen    uint64
	closed bool
}

// ReconnOption configures a reconnecting connection.
type ReconnOption func(*reconnConn)

// WithRedialHook installs a callback invoked on every redial (not the
// initial dial) — the telemetry layer counts reconnects with it. The hook
// runs with the connection's lock held; it must not call back into the
// connection.
func WithRedialHook(fn func()) ReconnOption {
	return func(c *reconnConn) { c.onRedial = fn }
}

// NewReconnecting dials local→remote on net and returns a Conn that
// transparently re-dials when the connection dies. onConnect, if non-nil,
// runs on the fresh connection after every dial (including the first);
// its failure fails the dial.
//
// The Conn contract is unchanged: at most one goroutine may call Send and
// one may call Recv at a time. Messages sent on a retired connection are
// lost, not replayed — exactly the semantics of a TCP reconnect — so the
// caller's protocol must tolerate resending (see the rmi retry policy and
// its server-side duplicate suppression).
func NewReconnecting(net Network, local, remote Addr, onConnect func(Conn) error, opts ...ReconnOption) (Conn, error) {
	c := &reconnConn{net: net, local: local, remote: remote, onConnect: onConnect}
	for _, opt := range opts {
		opt(c)
	}
	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.conn = conn
	return c, nil
}

func (c *reconnConn) dial() (Conn, error) {
	conn, err := c.net.Dial(c.local, c.remote)
	if err != nil {
		return nil, err
	}
	if c.onConnect != nil {
		if err := c.onConnect(conn); err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("transport: reconnect preamble: %w", err)
		}
	}
	return conn, nil
}

// current returns the live connection and its generation.
func (c *reconnConn) current() (Conn, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, 0, ErrClosed
	}
	return c.conn, c.gen, nil
}

// redial replaces the connection of generation failedGen. If another
// goroutine already replaced it, the existing replacement is returned.
func (c *reconnConn) redial(failedGen uint64) (Conn, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, 0, ErrClosed
	}
	if c.gen != failedGen {
		return c.conn, c.gen, nil
	}
	conn, err := c.dial()
	if err != nil {
		return nil, 0, err
	}
	_ = c.conn.Close()
	c.conn = conn
	c.gen++
	if c.onRedial != nil {
		c.onRedial()
	}
	return c.conn, c.gen, nil
}

// shouldRedial reports whether err means the connection itself is dead, as
// opposed to a link-level failure (ErrDisconnected, ErrDropped) where the
// connection outlives the outage, or a fatal error of the message itself.
func shouldRedial(err error) bool {
	if err == nil || !IsTransient(err) {
		return false
	}
	return !errors.Is(err, netsim.ErrDisconnected) && !errors.Is(err, netsim.ErrDropped)
}

func (c *reconnConn) Send(p []byte) error {
	conn, gen, err := c.current()
	if err != nil {
		return err
	}
	for {
		sendErr := conn.Send(p)
		if sendErr == nil || !shouldRedial(sendErr) {
			return sendErr
		}
		if conn, gen, err = c.redial(gen); err != nil {
			return err
		}
	}
}

func (c *reconnConn) Recv() ([]byte, error) {
	conn, gen, err := c.current()
	if err != nil {
		return nil, err
	}
	for {
		p, recvErr := conn.Recv()
		if recvErr == nil || !shouldRedial(recvErr) {
			return p, recvErr
		}
		if conn, gen, err = c.redial(gen); err != nil {
			return nil, err
		}
	}
}

func (c *reconnConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

func (c *reconnConn) RemoteAddr() Addr { return c.remote }
func (c *reconnConn) LocalAddr() Addr  { return c.local }
