package transport

import (
	"fmt"
	"hash/fnv"
	"os"
	"sync"
	"time"

	"obiwan/internal/netsim"
)

// memTrace (env MEMNET_TRACE=1) dumps every link-level send — virtual
// timestamp, endpoints, size, planned delay — to stderr. Under a virtual
// clock the dump is deterministic per seed, so diffing two runs' traces
// pinpoints the first divergent message when debugging nondeterminism.
var memTrace = os.Getenv("MEMNET_TRACE") != ""

// MemNetwork is an in-process network whose point-to-point links are
// modelled by netsim. It is the synthetic testbed for every experiment:
// link profiles can be changed at run time and individual hosts can be
// disconnected, reproducing the mobile scenarios of the paper.
//
// MemNetwork is safe for concurrent use.
type MemNetwork struct {
	clock     netsim.Clock
	mu        sync.Mutex
	defProf   netsim.Profile
	seed      int64
	listeners map[Addr]*memListener
	links     map[linkKey]*netsim.Link
	downHosts map[Addr]bool
}

type linkKey struct{ from, to Addr }

// NewMemNetwork returns a network whose links default to profile p.
func NewMemNetwork(p netsim.Profile) *MemNetwork {
	return NewMemNetworkSeeded(p, 1)
}

// NewMemNetworkSeeded returns a network whose links default to profile p
// and whose loss/jitter randomness derives from seed. Each directional link
// gets its own RNG seeded by a stable hash of (seed, from, to), so the
// random stream a link sees does not depend on the order links happen to be
// created in — two runs of the same scenario with the same seed observe the
// same drops and jitter per link.
func NewMemNetworkSeeded(p netsim.Profile, seed int64) *MemNetwork {
	return NewMemNetworkClock(p, seed, netsim.Real())
}

// NewMemNetworkClock is NewMemNetworkSeeded on an explicit clock. With a
// *netsim.VirtualClock the network becomes a discrete-event simulation:
// simulated delays are scheduled instead of slept, so thousand-site
// scenarios covering minutes of traffic run in milliseconds, and the RMI
// layer built on top inherits the clock automatically (see Clock).
func NewMemNetworkClock(p netsim.Profile, seed int64, clock netsim.Clock) *MemNetwork {
	return &MemNetwork{
		clock:     clock,
		defProf:   p,
		seed:      seed,
		listeners: make(map[Addr]*memListener),
		links:     make(map[linkKey]*netsim.Link),
		downHosts: make(map[Addr]bool),
	}
}

// Clock returns the network's time source (netsim.ClockProvider). Layers
// above — the RMI runtime in particular — inherit it so their timers and
// goroutines live on the same timeline as the links.
func (n *MemNetwork) Clock() netsim.Clock { return n.clock }

// linkSeed derives the deterministic RNG seed for the directional link
// from→to.
func (n *MemNetwork) linkSeed(from, to Addr) int64 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(uint64(n.seed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(from))
	h.Write([]byte{0}) // separator: ("ab","c") ≠ ("a","bc")
	h.Write([]byte(to))
	return int64(h.Sum64())
}

// link returns (creating if needed) the directional link from→to.
func (n *MemNetwork) link(from, to Addr) *netsim.Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.linkLocked(from, to)
}

func (n *MemNetwork) linkLocked(from, to Addr) *netsim.Link {
	k := linkKey{from, to}
	l, ok := n.links[k]
	if !ok {
		l = netsim.NewLinkClock(n.defProf, n.linkSeed(from, to), n.clock)
		n.links[k] = l
	}
	return l
}

// SetProfile sets the link profile in both directions between a and b.
func (n *MemNetwork) SetProfile(a, b Addr, p netsim.Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkLocked(a, b).SetProfile(p)
	n.linkLocked(b, a).SetProfile(p)
}

// Disconnect severs both directions between a and b; in-flight messages
// still arrive (they are already "on the wire") but new sends fail with
// netsim.ErrDisconnected.
func (n *MemNetwork) Disconnect(a, b Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkLocked(a, b).SetDown(true)
	n.linkLocked(b, a).SetDown(true)
}

// Reconnect restores both directions between a and b.
func (n *MemNetwork) Reconnect(a, b Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkLocked(a, b).SetDown(false)
	n.linkLocked(b, a).SetDown(false)
}

// PartitionHost disconnects host from everyone — the laptop going into the
// taxi. Existing and future links touching the host reject sends.
func (n *MemNetwork) PartitionHost(host Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.downHosts[host] = true
}

// HealHost reverses PartitionHost.
func (n *MemNetwork) HealHost(host Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.downHosts, host)
}

func (n *MemNetwork) hostDown(a, b Addr) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.downHosts[a] || n.downHosts[b]
}

// LinkStats returns traffic counters for the directional link from→to.
func (n *MemNetwork) LinkStats(from, to Addr) netsim.Stats {
	return n.link(from, to).Stats()
}

// SetFaultSchedule attaches a scripted fault schedule to the directional
// link from→to (nil detaches). The schedule sees every send attempt on that
// link, including the RMI connection preamble — account for it when keying
// events by send count.
func (n *MemNetwork) SetFaultSchedule(from, to Addr, s *netsim.FaultSchedule) {
	n.link(from, to).SetSchedule(s)
}

// Listen binds a listener at local.
func (n *MemNetwork) Listen(local Addr) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[local]; exists {
		return nil, fmt.Errorf("transport: address %q already bound", local)
	}
	ln := &memListener{net: n, addr: local}
	ln.cond = netsim.NewCond(n.clock, &ln.mu)
	n.listeners[local] = ln
	return ln, nil
}

// Dial connects from local to remote. The connection's two directions use
// the local→remote and remote→local links.
func (n *MemNetwork) Dial(local, remote Addr) (Conn, error) {
	n.mu.Lock()
	ln, ok := n.listeners[remote]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: no listener at %q", ErrUnreachable, remote)
	}
	if n.hostDown(local, remote) {
		return nil, netsim.ErrDisconnected
	}

	c2s := newMsgQueue(n.clock) // client → server
	s2c := newMsgQueue(n.clock) // server → client
	client := &memConn{
		net: n, local: local, remote: remote,
		out: c2s, in: s2c, outLink: n.link(local, remote),
	}
	server := &memConn{
		net: n, local: remote, remote: local,
		out: s2c, in: c2s, outLink: n.link(remote, local),
	}
	if err := ln.offer(server); err != nil {
		return nil, err
	}
	return client, nil
}

var _ Network = (*MemNetwork)(nil)
var _ netsim.ClockProvider = (*MemNetwork)(nil)

type memListener struct {
	net  *MemNetwork
	addr Addr

	mu      sync.Mutex
	cond    *netsim.Cond
	pending []*memConn
	closed  bool
}

// offer hands an inbound connection to the accept loop. The wakeup goes
// through a clock-aware Cond so a virtual clock never advances past a
// runnable acceptor.
func (l *memListener) offer(c *memConn) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("%w: listener at %q closed", ErrUnreachable, l.addr)
	}
	l.pending = append(l.pending, c)
	l.cond.Signal()
	return nil
}

func (l *memListener) Accept() (Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.pending) == 0 && !l.closed {
		l.cond.Wait()
	}
	if l.closed {
		return nil, ErrClosed
	}
	c := l.pending[0]
	l.pending = l.pending[1:]
	return c, nil
}

func (l *memListener) Close() error {
	l.mu.Lock()
	first := !l.closed
	if first {
		l.closed = true
		l.cond.Broadcast()
	}
	l.mu.Unlock()
	if first {
		l.net.mu.Lock()
		// Guard the map against a successor listener re-bound at our address.
		if l.net.listeners[l.addr] == l {
			delete(l.net.listeners, l.addr)
		}
		l.net.mu.Unlock()
	}
	return nil
}

func (l *memListener) Addr() Addr { return l.addr }

// queuedMsg is a message plus its simulated arrival time.
type queuedMsg struct {
	data []byte
	due  time.Time
}

// msgQueue is an unbounded FIFO with blocking pop and close semantics.
// Its wakeups go through a clock-aware Cond: under a virtual clock a
// blocked reader counts as idle, and a push transfers it a busy token
// before signalling, so quiescence detection stays exact.
type msgQueue struct {
	mu     sync.Mutex
	cond   *netsim.Cond
	items  []queuedMsg
	closed bool
}

func newMsgQueue(clock netsim.Clock) *msgQueue {
	q := &msgQueue{}
	q.cond = netsim.NewCond(clock, &q.mu)
	return q
}

func (q *msgQueue) push(m queuedMsg) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.items = append(q.items, m)
	// Wake the reader at the message's delivery time, not at push time:
	// under a virtual clock that folds the wakeup and the propagation delay
	// into one event. Links are FIFO (netsim clamps arrival order), so the
	// new message's due time is never earlier than a queued predecessor's.
	q.cond.SignalAt(m.due)
	return nil
}

// pop blocks until a message is queued or the queue closes. Buffered
// messages drain even after close (they were already in flight).
func (q *msgQueue) pop() (queuedMsg, error) {
	q.mu.Lock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		q.mu.Unlock()
		return queuedMsg{}, ErrClosed
	}
	m := q.items[0]
	q.items = q.items[1:]
	q.mu.Unlock()
	return m, nil
}

func (q *msgQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// memConn is one endpoint of a simulated connection.
type memConn struct {
	net     *MemNetwork
	local   Addr
	remote  Addr
	out     *msgQueue
	in      *msgQueue
	outLink *netsim.Link
	once    sync.Once
}

func (c *memConn) Send(p []byte) error {
	if err := validateSize(len(p)); err != nil {
		return err
	}
	if c.net.hostDown(c.local, c.remote) {
		return netsim.ErrDisconnected
	}
	delay, err := c.outLink.Plan(len(p))
	if memTrace {
		fmt.Fprintf(os.Stderr, "TRACE %d %s->%s %dB +%v err=%v\n",
			c.net.clock.Now().UnixNano(), c.local, c.remote, len(p), delay, err)
	}
	if err != nil {
		return err
	}
	// Copy: the caller may reuse its buffer after Send returns.
	data := make([]byte, len(p))
	copy(data, p)
	return c.out.push(queuedMsg{data: data, due: c.net.clock.Now().Add(delay)})
}

func (c *memConn) Recv() ([]byte, error) {
	m, err := c.in.pop()
	if err != nil {
		return nil, err
	}
	// Realize the simulated propagation delay on the network's clock: the
	// real clock sleeps it with sub-tick precision (plain time.Sleep
	// overshoots by a timer tick); a virtual clock parks the reader on the
	// event heap and delivers at exactly m.due. When push's timed wake
	// already carried the reader to the delivery instant (SignalAt), the
	// delay is fully realized and no second park is needed.
	if m.due.After(c.net.clock.Now()) {
		c.net.clock.SleepUntil(m.due)
	}
	return m.data, nil
}

func (c *memConn) Close() error {
	c.once.Do(func() {
		c.out.close()
		c.in.close()
	})
	return nil
}

func (c *memConn) RemoteAddr() Addr { return c.remote }
func (c *memConn) LocalAddr() Addr  { return c.local }
