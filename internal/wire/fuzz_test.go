package wire

import (
	"testing"

	"obiwan/internal/codec"
)

// FuzzDecodeFrame checks that the RMI frame parser survives arbitrary
// input: no panics, no over-reads, errors only.
func FuzzDecodeFrame(f *testing.F) {
	reg := codec.NewRegistry()
	if frame, err := EncodeCall(reg, &Call{ID: 1, Target: 2, Method: "M", Args: []any{int64(1), "s"}}); err == nil {
		f.Add(frame)
	}
	if frame, err := EncodeReply(reg, &Reply{ID: 1, Results: []any{"ok"}}); err == nil {
		f.Add(frame)
	}
	f.Add(EncodeFault(&Fault{ID: 1, Code: FaultApp, Message: "boom"}))
	f.Add([]byte{})
	f.Add([]byte{KindCall})
	f.Add([]byte{KindCall, 0x01, 0x02, 0x01, 'M', 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Decode(reg, data)
	})
}

// FuzzCallRoundTrip checks that any call frame that encodes also decodes
// back to the same content.
func FuzzCallRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), "Method", "arg", int64(7))
	f.Add(uint64(0), uint64(0), "", "", int64(0))

	reg := codec.NewRegistry()
	f.Fuzz(func(t *testing.T, id, target uint64, method, sArg string, iArg int64) {
		in := &Call{ID: id, Target: target, Method: method, Args: []any{sArg, iArg}}
		frame, err := EncodeCall(reg, in)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		out, err := Decode(reg, frame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		c, ok := out.(*Call)
		if !ok {
			t.Fatalf("decoded %T", out)
		}
		if c.ID != id || c.Target != target || c.Method != method ||
			c.Args[0] != sArg || c.Args[1] != iArg {
			t.Fatalf("round trip mismatch: %+v vs %+v", c, in)
		}
	})
}
