// Package wire defines the RMI message protocol: the frames exchanged
// between an OBIWAN client runtime and a server runtime over a transport
// connection. It is the Go analogue of the JRMP frames Java RMI used
// underneath the original prototype.
//
// Three frame kinds exist:
//
//	Call  — client → server: call id, target object, method name, arguments
//	Reply — server → client: call id, result values
//	Fault — server → client: call id, error classification and message
//
// Arguments and results use the codec's self-describing Value encoding, so
// any registered type (including remote references) can travel in a frame.
package wire

import (
	"fmt"

	"obiwan/internal/codec"
)

// Frame kind bytes. Append-only.
const (
	KindCall  byte = 0x01
	KindReply byte = 0x02
	KindFault byte = 0x03
	KindHello byte = 0x04
)

// ProtocolVersion is the wire protocol revision. A connection opens with a
// Hello frame carrying it; peers reject mismatches instead of
// mis-parsing each other's frames.
//
// Revision history:
//
//	1 — initial frame layout
//	2 — Call frames carry a causal trace context (TraceID, SpanID)
const ProtocolVersion = 2

// helloMagic guards against cross-protocol traffic reaching an RMI port.
const helloMagic = "OBI1"

// Hello is the connection preamble.
type Hello struct {
	Version uint64
}

// EncodeHello serializes the connection preamble.
func EncodeHello() []byte {
	e := codec.NewEncoder(8)
	e.WriteRaw([]byte{KindHello})
	e.WriteRaw([]byte(helloMagic))
	e.WriteUvarint(ProtocolVersion)
	return e.Bytes()
}

// Fault codes classify remote failures.
const (
	// FaultApp marks an error returned by the application method itself
	// (the Java-RMI analogue of a remote exception).
	FaultApp = "app"
	// FaultNoSuchObject marks calls to an object id that is not exported
	// (e.g. it was unexported after the reference was handed out).
	FaultNoSuchObject = "no-such-object"
	// FaultNoSuchMethod marks calls to a method the target does not have.
	FaultNoSuchMethod = "no-such-method"
	// FaultBadArgs marks argument count or type mismatches.
	FaultBadArgs = "bad-args"
	// FaultEncode marks results the server could not serialize.
	FaultEncode = "encode"
)

// Call is a request frame.
//
// Client identifies the calling runtime incarnation. Together with ID it
// names one logical invocation across resends: a client retrying a call
// (e.g. its reply was lost to a link outage) re-transmits the same
// (Client, ID) pair — possibly on a fresh connection — and the server's
// duplicate-suppression table guarantees the invocation executes at most
// once. An empty Client opts out of suppression.
type Call struct {
	ID     uint64
	Target uint64
	Method string
	Client string
	// TraceID and SpanID carry the caller's causal trace context: the
	// trace this invocation belongs to and the client-side span that
	// caused it. Both zero means the call is untraced. The server roots
	// its serve span under SpanID, which is how a fault on one site and
	// the payload assembly it causes on another join one span tree.
	TraceID uint64
	SpanID  uint64
	Args    []any
}

// Reply is a successful response frame.
type Reply struct {
	ID      uint64
	Results []any
}

// Fault is a failure response frame.
type Fault struct {
	ID      uint64
	Code    string
	Message string
}

// EncodeCall serializes c using reg for argument values.
func EncodeCall(reg *codec.Registry, c *Call) ([]byte, error) {
	e := codec.NewEncoder(64 + 16*len(c.Args))
	e.WriteRaw([]byte{KindCall})
	e.WriteUvarint(c.ID)
	e.WriteUvarint(c.Target)
	e.WriteString(c.Method)
	e.WriteString(c.Client)
	e.WriteUvarint(c.TraceID)
	e.WriteUvarint(c.SpanID)
	e.WriteUvarint(uint64(len(c.Args)))
	for i, a := range c.Args {
		if err := e.Value(reg, a); err != nil {
			return nil, fmt.Errorf("wire: call %s arg %d: %w", c.Method, i, err)
		}
	}
	return e.Bytes(), nil
}

// EncodeReply serializes r.
func EncodeReply(reg *codec.Registry, r *Reply) ([]byte, error) {
	e := codec.NewEncoder(32 + 16*len(r.Results))
	e.WriteRaw([]byte{KindReply})
	e.WriteUvarint(r.ID)
	e.WriteUvarint(uint64(len(r.Results)))
	for i, v := range r.Results {
		if err := e.Value(reg, v); err != nil {
			return nil, fmt.Errorf("wire: reply result %d: %w", i, err)
		}
	}
	return e.Bytes(), nil
}

// EncodeFault serializes f.
func EncodeFault(f *Fault) []byte {
	e := codec.NewEncoder(32 + len(f.Message))
	e.WriteRaw([]byte{KindFault})
	e.WriteUvarint(f.ID)
	e.WriteString(f.Code)
	e.WriteString(f.Message)
	return e.Bytes()
}

// Decode parses a frame into exactly one of *Call, *Reply, or *Fault.
func Decode(reg *codec.Registry, frame []byte) (any, error) {
	d := codec.NewDecoder(frame)
	kind, err := d.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("wire: empty frame: %w", err)
	}
	switch kind {
	case KindCall:
		c := &Call{}
		if c.ID, err = d.ReadUvarint(); err != nil {
			return nil, fmt.Errorf("wire: call id: %w", err)
		}
		if c.Target, err = d.ReadUvarint(); err != nil {
			return nil, fmt.Errorf("wire: call target: %w", err)
		}
		if c.Method, err = d.ReadString(); err != nil {
			return nil, fmt.Errorf("wire: call method: %w", err)
		}
		if c.Client, err = d.ReadString(); err != nil {
			return nil, fmt.Errorf("wire: call client: %w", err)
		}
		if c.TraceID, err = d.ReadUvarint(); err != nil {
			return nil, fmt.Errorf("wire: call trace id: %w", err)
		}
		if c.SpanID, err = d.ReadUvarint(); err != nil {
			return nil, fmt.Errorf("wire: call span id: %w", err)
		}
		n, err := d.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("wire: call argc: %w", err)
		}
		if n > uint64(d.Remaining())+1 {
			return nil, fmt.Errorf("%w: arg count %d", codec.ErrCorrupt, n)
		}
		c.Args = make([]any, n)
		for i := range c.Args {
			if c.Args[i], err = d.Value(reg); err != nil {
				return nil, fmt.Errorf("wire: call %s arg %d: %w", c.Method, i, err)
			}
		}
		return c, nil
	case KindReply:
		r := &Reply{}
		if r.ID, err = d.ReadUvarint(); err != nil {
			return nil, fmt.Errorf("wire: reply id: %w", err)
		}
		n, err := d.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("wire: reply count: %w", err)
		}
		if n > uint64(d.Remaining())+1 {
			return nil, fmt.Errorf("%w: result count %d", codec.ErrCorrupt, n)
		}
		r.Results = make([]any, n)
		for i := range r.Results {
			if r.Results[i], err = d.Value(reg); err != nil {
				return nil, fmt.Errorf("wire: reply result %d: %w", i, err)
			}
		}
		return r, nil
	case KindHello:
		magic, err := d.ReadRaw(len(helloMagic))
		if err != nil {
			return nil, fmt.Errorf("wire: hello magic: %w", err)
		}
		if string(magic) != helloMagic {
			return nil, fmt.Errorf("wire: bad hello magic %q", magic)
		}
		h := &Hello{}
		if h.Version, err = d.ReadUvarint(); err != nil {
			return nil, fmt.Errorf("wire: hello version: %w", err)
		}
		return h, nil
	case KindFault:
		f := &Fault{}
		if f.ID, err = d.ReadUvarint(); err != nil {
			return nil, fmt.Errorf("wire: fault id: %w", err)
		}
		if f.Code, err = d.ReadString(); err != nil {
			return nil, fmt.Errorf("wire: fault code: %w", err)
		}
		if f.Message, err = d.ReadString(); err != nil {
			return nil, fmt.Errorf("wire: fault message: %w", err)
		}
		return f, nil
	default:
		return nil, fmt.Errorf("wire: unknown frame kind %#x", kind)
	}
}
