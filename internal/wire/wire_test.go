package wire

import (
	"strings"
	"testing"
	"testing/quick"

	"obiwan/internal/codec"
)

func TestCallRoundTrip(t *testing.T) {
	reg := codec.NewRegistry()
	in := &Call{
		ID: 7, Target: 42, Method: "Get",
		TraceID: 0xAB00000001, SpanID: 0xAB00000002,
		Args: []any{int64(1), "two", []byte{3}, nil, true},
	}
	frame, err := EncodeCall(reg, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(reg, frame)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := out.(*Call)
	if !ok {
		t.Fatalf("decoded %T", out)
	}
	if c.ID != 7 || c.Target != 42 || c.Method != "Get" || len(c.Args) != 5 {
		t.Fatalf("call: %+v", c)
	}
	if c.TraceID != 0xAB00000001 || c.SpanID != 0xAB00000002 {
		t.Fatalf("trace context lost: %+v", c)
	}
	if c.Args[0] != int64(1) || c.Args[1] != "two" || c.Args[3] != nil || c.Args[4] != true {
		t.Fatalf("args: %+v", c.Args)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	reg := codec.NewRegistry()
	frame, err := EncodeReply(reg, &Reply{ID: 9, Results: []any{"ok", uint64(5)}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(reg, frame)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := out.(*Reply)
	if !ok || r.ID != 9 || len(r.Results) != 2 || r.Results[0] != "ok" {
		t.Fatalf("reply: %#v (%T)", out, out)
	}
}

func TestFaultRoundTrip(t *testing.T) {
	reg := codec.NewRegistry()
	frame := EncodeFault(&Fault{ID: 3, Code: FaultApp, Message: "boom"})
	out, err := Decode(reg, frame)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := out.(*Fault)
	if !ok || f.ID != 3 || f.Code != FaultApp || f.Message != "boom" {
		t.Fatalf("fault: %#v", out)
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	reg := codec.NewRegistry()
	if _, err := Decode(reg, []byte{0x7F, 0, 0}); err == nil || !strings.Contains(err.Error(), "unknown frame kind") {
		t.Fatalf("err: %v", err)
	}
	if _, err := Decode(reg, nil); err == nil {
		t.Fatal("empty frame must fail")
	}
}

func TestEncodeCallUnsupportedArg(t *testing.T) {
	reg := codec.NewRegistry()
	_, err := EncodeCall(reg, &Call{Method: "M", Args: []any{struct{ X int }{1}}})
	if err == nil {
		t.Fatal("unregistered struct arg must fail to encode")
	}
}

// Property: decoding arbitrary junk never panics.
func TestQuickDecodeRobust(t *testing.T) {
	reg := codec.NewRegistry()
	f := func(junk []byte) bool {
		_, _ = Decode(reg, junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: call frames round trip for arbitrary ids, methods, and
// string/int argument vectors.
func TestQuickCallRoundTrip(t *testing.T) {
	reg := codec.NewRegistry()
	f := func(id, target, traceID, spanID uint64, method string, sArgs []string, iArgs []int64) bool {
		args := make([]any, 0, len(sArgs)+len(iArgs))
		for _, s := range sArgs {
			args = append(args, s)
		}
		for _, i := range iArgs {
			args = append(args, i)
		}
		frame, err := EncodeCall(reg, &Call{ID: id, Target: target, Method: method, TraceID: traceID, SpanID: spanID, Args: args})
		if err != nil {
			return false
		}
		out, err := Decode(reg, frame)
		if err != nil {
			return false
		}
		c, ok := out.(*Call)
		if !ok || c.ID != id || c.Target != target || c.Method != method || len(c.Args) != len(args) {
			return false
		}
		if c.TraceID != traceID || c.SpanID != spanID {
			return false
		}
		for i := range args {
			if c.Args[i] != args[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
