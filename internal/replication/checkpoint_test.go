package replication

import (
	"bytes"
	"strings"
	"testing"

	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/transport"
)

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	net := transport.NewMemNetwork(netsim.Loopback)
	master := newTestSite(t, net, "s2", 7)
	docs := buildChain(t, master, 5, 16)
	docs[2].Name = "middle, edited"
	if err := master.engine.MarkUpdated(docs[2]); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := master.engine.CheckpointMasters(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh incarnation with the same site id restores the universe.
	incarnation := newTestSite(t, net, "s2b", 7)
	restored, err := incarnation.engine.RestoreMasters(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 5 {
		t.Fatalf("restored %d objects", len(restored))
	}

	// Identities, versions, state, and the chain structure survive.
	origHead, _ := master.heap.EntryOf(docs[0])
	obj, ok := restored[origHead.OID]
	if !ok {
		t.Fatal("head identity lost")
	}
	head := obj.(*doc)
	if head.Name != "doc-0" || len(head.Body) != 16 {
		t.Fatalf("head state: %+v", head)
	}
	cur := head
	for i := 1; i < 5; i++ {
		next, err := objmodel.Deref[*doc](cur.Next)
		if err != nil {
			t.Fatalf("chain broken at %d: %v", i, err)
		}
		cur = next
	}
	if cur.Name != "middle, edited" && cur.Name != "doc-4" {
		t.Fatalf("tail: %q", cur.Name)
	}
	// The edited object's version survived.
	e2, _ := master.heap.EntryOf(docs[2])
	r2, _ := incarnation.heap.Get(e2.OID)
	if r2.Version() != 2 {
		t.Fatalf("restored version: %d", r2.Version())
	}

	// New masters mint identities above the restored range.
	fresh := &doc{Name: "post-restore"}
	fe, err := incarnation.engine.RegisterMaster(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if _, clash := restored[fe.OID]; clash {
		t.Fatalf("fresh OID %v collides with restored range", fe.OID)
	}

	// The restored universe serves replication as before.
	client := newTestSite(t, net, "s1", 1)
	desc, err := incarnation.engine.ExportObject(head)
	if err != nil {
		t.Fatal(err)
	}
	ref := client.engine.RefFromDescriptor(desc, GetSpec{Mode: Transitive})
	croot, err := objmodel.Deref[*doc](ref)
	if err != nil {
		t.Fatal(err)
	}
	if croot.Name != "doc-0" || client.heap.Len() != 5 {
		t.Fatalf("replication from restored site: %q, heap %d", croot.Name, client.heap.Len())
	}
}

func TestCheckpointSkipsReplicas(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 2, 8)
	ref := exportHead(t, master, client, docs[0], GetSpec{Mode: Transitive})
	if _, err := ref.Resolve(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := client.engine.CheckpointMasters(&buf); err != nil {
		t.Fatal(err)
	}
	// The client holds only replicas: its checkpoint is empty.
	fresh := newTestSite(t, transport.NewMemNetwork(netsim.Loopback), "f", 1)
	restored, err := fresh.engine.RestoreMasters(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 0 {
		t.Fatalf("replicas leaked into checkpoint: %d", len(restored))
	}
}

func TestCheckpointPreservesFrontierToOtherSites(t *testing.T) {
	// A master whose graph references a replica of ANOTHER site's object:
	// after restore, the reference must proxy back to the upstream master.
	net := transport.NewMemNetwork(netsim.Loopback)
	s2 := newTestSite(t, net, "s2", 2)
	s3 := newTestSite(t, net, "s3", 3)

	upstream := &doc{Name: "upstream"}
	if _, err := s3.engine.RegisterMaster(upstream); err != nil {
		t.Fatal(err)
	}
	udesc, err := s3.engine.ExportObject(upstream)
	if err != nil {
		t.Fatal(err)
	}
	// s2 masters an object pointing at an unresolved proxy to s3.
	local := &doc{Name: "local"}
	if _, err := s2.engine.RegisterMaster(local); err != nil {
		t.Fatal(err)
	}
	local.Next = s2.engine.RefFromDescriptor(udesc, DefaultSpec)

	var buf bytes.Buffer
	if err := s2.engine.CheckpointMasters(&buf); err != nil {
		t.Fatal(err)
	}
	incarnation := newTestSite(t, net, "s2b", 2)
	restored, err := incarnation.engine.RestoreMasters(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	e, _ := s2.heap.EntryOf(local)
	head := restored[e.OID].(*doc)
	res, err := head.Next.Invoke("Title")
	if err != nil || res[0] != "upstream" {
		t.Fatalf("cross-site frontier after restore: %v %v", res, err)
	}
}

func TestRestoreValidation(t *testing.T) {
	net := transport.NewMemNetwork(netsim.Loopback)
	s := newTestSite(t, net, "x", 4)

	if _, err := s.engine.RestoreMasters(strings.NewReader("junk")); err == nil {
		t.Fatal("junk stream must be rejected")
	}

	// Wrong site id.
	other := newTestSite(t, net, "y", 5)
	buildChain(t, other, 1, 4)
	var buf bytes.Buffer
	if err := other.engine.CheckpointMasters(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := s.engine.RestoreMasters(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("cross-site restore must be rejected")
	}

	// Identity collision: restoring twice into the same heap.
	incarnation := newTestSite(t, net, "y2", 5)
	if _, err := incarnation.engine.RestoreMasters(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if _, err := incarnation.engine.RestoreMasters(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("double restore must collide")
	}
}
