// Package replication implements OBIWAN's core contribution: incremental
// replication of object graphs with automatic object-fault detection and
// resolution, through proxy-in / proxy-out pairs.
//
// The protocol follows §2.2 of the paper:
//
//   - A master site exports a ProxyIn per object handed out. Its Get method
//     assembles a replica payload: the demanded object, optionally a batch
//     or cluster of the next objects of its reachability graph, and
//     frontier descriptors for every reference that leaves the shipped set.
//   - The receiving site materializes the payload: replicas are
//     instantiated (deduplicated by OID against the local heap), their
//     references bound — to local objects where possible, to fresh
//     ProxyOuts at the frontier.
//   - Invoking through an unresolved reference raises an object fault; the
//     ProxyOut demands its target (and the next batch/cluster), the Ref is
//     spliced to the fresh replica (updateMember), and the ProxyOut becomes
//     garbage. Further invocations are direct.
//   - Put ships a replica's state back to its master through the ProxyIn
//     (per object, or per cluster when the replica arrived in a cluster and
//     thus cannot be individually updated).
package replication

import (
	"obiwan/internal/codec"
	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

// Mode selects how much of the reachability graph one Get ships.
type Mode uint8

const (
	// Incremental ships the demanded object plus at most Batch-1 more
	// objects of its reachability graph; everything beyond the shipped set
	// is proxied.
	Incremental Mode = iota
	// Transitive ships the whole reachability graph in one step — the
	// paper's transitive-closure alternative for when "all objects are
	// really required for the application to work".
	Transitive
)

func (m Mode) String() string {
	if m == Transitive {
		return "transitive"
	}
	return "incremental"
}

// GetSpec parameterizes a replication demand. It corresponds to the mode
// argument of the paper's IProvideRemote::get(mode), extended with the
// batch/cluster sizing of §4.2–4.3.
type GetSpec struct {
	// Mode is incremental or transitive closure.
	Mode Mode
	// Batch is how many objects each demand ships (≥1; 0 means 1). With
	// Clustered=false each shipped object gets its own proxy pair and stays
	// individually updatable (figure 5).
	Batch int
	// Depth, when >0, bounds the shipped set by BFS depth instead of (or in
	// addition to) Batch — the paper's depth-defined dynamic clusters.
	Depth int
	// Clustered ships the batch as a single cluster with exactly one proxy
	// pair; members cannot be individually updated (figure 6).
	Clustered bool
}

// DefaultSpec is one-object-at-a-time incremental replication, the paper's
// most flexible (and least efficient) alternative.
var DefaultSpec = GetSpec{Mode: Incremental, Batch: 1}

// normalize fills in defaults.
func (s GetSpec) normalize() GetSpec {
	if s.Batch <= 0 {
		s.Batch = 1
	}
	if s.Mode == Transitive {
		s.Batch = 0 // unlimited
		s.Clustered = false
	}
	return s
}

// ObjectRecord is one replica in a payload.
type ObjectRecord struct {
	// OID is the object's identity; replicas share it with the master.
	OID uint64
	// TypeName is the registered wire name used to instantiate the replica.
	TypeName string
	// Version is the master version this state reflects.
	Version uint64
	// State is the codec-encoded exported fields (refs as OIDs).
	State []byte
	// Provider is the object's own proxy-in for later Put/refresh. Zero
	// when the payload is clustered: members share the ClusterProvider.
	Provider rmi.RemoteRef
}

// FrontierRef describes a reference that leaves the shipped set: the
// receiving site materializes a ProxyOut from it.
type FrontierRef struct {
	// OID is the identity of the not-shipped target.
	OID uint64
	// Provider is the proxy-in (at the master site, or wherever the target
	// lives) that a future demand should Get from.
	Provider rmi.RemoteRef
	// TypeName is the target's registered type, for diagnostics.
	TypeName string
}

// Payload is the unit of replication shipped by ProxyIn.Get.
type Payload struct {
	// RootOID is the demanded object.
	RootOID uint64
	// Objects are the shipped replicas, root first (BFS order).
	Objects []ObjectRecord
	// Frontier describes every reference leaving the shipped set.
	Frontier []FrontierRef
	// Clustered marks a single-proxy-pair group (§4.3).
	Clustered bool
	// ClusterProvider is the one proxy-in covering all Objects when
	// Clustered is set.
	ClusterProvider rmi.RemoteRef
	// Spec echoes the demand so frontier ProxyOuts inherit it: a walk keeps
	// replicating "the next N objects" on every fault.
	Spec GetSpec
	// Group, when non-empty, lists the member addresses of the master
	// group that assembled this payload. Every member exports the same
	// proxy-in object ids, so the receiver can fail any provider in this
	// payload over to another member by swapping the address alone.
	Group []transport.Addr
}

// PutRequest ships a replica's state back to its master (method put of the
// paper's IProvide interface).
type PutRequest struct {
	// OID identifies the object being updated.
	OID uint64
	// BaseVersion is the master version the replica last saw; consistency
	// policies use it to detect lost updates.
	BaseVersion uint64
	// State is the replica's current state.
	State []byte
	// Frontier resolves any references in State that the master site may
	// not know (e.g. objects mastered at the putting site).
	Frontier []FrontierRef
}

// PutReply acknowledges an applied update.
type PutReply struct {
	// NewVersion is the master's version after the update.
	NewVersion uint64
}

// ClusterPutRequest updates a whole cluster as a unit: clusters share one
// proxy pair, so members cannot be individually updated.
type ClusterPutRequest struct {
	// Members carries one update per cluster member.
	Members []PutRequest
}

func init() {
	codec.MustRegister("obiwan.repl.GetSpec", GetSpec{})
	codec.MustRegister("obiwan.repl.ObjectRecord", ObjectRecord{})
	codec.MustRegister("obiwan.repl.FrontierRef", FrontierRef{})
	codec.MustRegister("obiwan.repl.Payload", Payload{})
	codec.MustRegister("obiwan.repl.PutRequest", PutRequest{})
	codec.MustRegister("obiwan.repl.PutReply", PutReply{})
	codec.MustRegister("obiwan.repl.ClusterPutRequest", ClusterPutRequest{})
}
