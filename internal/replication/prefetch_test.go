package replication

import (
	"testing"
	"time"

	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/transport"
)

func TestPrefetchResolvesFrontier(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 10, 8)
	ref := exportHead(t, master, client, docs[0], GetSpec{Mode: Incremental, Batch: 2})

	pf := NewPrefetcher(client.engine)
	defer pf.Close()
	pf.Prefetch(ref, 0)
	pf.Wait()

	if client.heap.Len() != 10 {
		t.Fatalf("prefetched heap: %d, want 10", client.heap.Len())
	}
	resolved, failed := pf.Stats()
	if failed != 0 {
		t.Fatalf("failed walks: %d", failed)
	}
	if resolved == 0 {
		t.Fatal("nothing prefetched")
	}
	// The application's subsequent walk is now fully local.
	calls := client.rt.Stats().CallsSent
	cur := ref
	for i := 0; i < 10; i++ {
		d, err := objmodel.Deref[*doc](cur)
		if err != nil {
			t.Fatal(err)
		}
		cur = d.Next
	}
	if after := client.rt.Stats().CallsSent; after != calls {
		t.Fatalf("walk after prefetch issued %d RMI calls", after-calls)
	}
}

func TestPrefetchBudget(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 10, 8)
	ref := exportHead(t, master, client, docs[0], GetSpec{Mode: Incremental, Batch: 1})

	pf := NewPrefetcher(client.engine)
	defer pf.Close()
	pf.Prefetch(ref, 3)
	pf.Wait()

	if got := client.heap.Len(); got != 3 {
		t.Fatalf("budgeted prefetch brought %d objects, want 3", got)
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	// With a slow link, prefetching while the application "thinks" must
	// reduce the walk's foreground faults.
	net := transport.NewMemNetwork(netsim.Profile{
		Name: "slowish", Latency: 5 * time.Millisecond,
	})
	master := newTestSite(t, net, "s2", 2)
	client := newTestSite(t, net, "s1", 1)
	docs := buildChain(t, master, 6, 8)
	ref := exportHead(t, master, client, docs[0], GetSpec{Mode: Incremental, Batch: 1})

	pf := NewPrefetcher(client.engine)
	defer pf.Close()
	pf.Prefetch(ref, 0)
	pf.Wait()

	start := time.Now()
	cur := ref
	for i := 0; i < 6; i++ {
		if _, err := cur.Invoke("Title"); err != nil {
			t.Fatal(err)
		}
		d, err := objmodel.Deref[*doc](cur)
		if err != nil {
			t.Fatal(err)
		}
		cur = d.Next
	}
	if walk := time.Since(start); walk > 5*time.Millisecond {
		t.Fatalf("post-prefetch walk took %v; latency not hidden", walk)
	}
}

func TestPrefetchStopsOnDisconnect(t *testing.T) {
	net := transport.NewMemNetwork(netsim.Loopback)
	master := newTestSite(t, net, "s2", 2)
	client := newTestSite(t, net, "s1", 1)
	docs := buildChain(t, master, 10, 8)
	ref := exportHead(t, master, client, docs[0], GetSpec{Mode: Incremental, Batch: 1})

	net.Disconnect("s1", "s2")
	pf := NewPrefetcher(client.engine)
	defer pf.Close()
	pf.Prefetch(ref, 0)
	pf.Wait()
	if _, failed := pf.Stats(); failed != 1 {
		t.Fatalf("failed walks: %d, want 1", failed)
	}
	if client.heap.Len() != 0 {
		t.Fatal("nothing should have been fetched")
	}
	// The ref still works once the link returns — prefetch failure is
	// invisible to the application.
	net.Reconnect("s1", "s2")
	if _, err := ref.Invoke("Title"); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchAfterClose(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 3, 8)
	ref := exportHead(t, master, client, docs[0], DefaultSpec)
	pf := NewPrefetcher(client.engine)
	pf.Close()
	pf.Prefetch(ref, 0) // no-op, no panic, no goroutine leak
	pf.Wait()
	if client.heap.Len() != 0 {
		t.Fatal("closed prefetcher must not fetch")
	}
}
