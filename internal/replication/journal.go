package replication

import (
	"fmt"
	"hash/crc32"

	"obiwan/internal/heap"
	"obiwan/internal/objmodel"
	"obiwan/internal/rmi"
)

// The journal is the engine's durability hook surface. A site that opened
// a WAL installs one; the engine then reports every mutation that must
// survive a crash *before* acknowledging it, write-ahead style: master
// state changes (registration, applied puts, local updates), replica-side
// dirty edits and their eventual clean-up, and proxy-in exports (so a
// reborn site can re-export at the same object ids and keep remote
// provider references valid). A journal error propagates to the caller —
// a durable site refuses mutations it cannot make durable.
//
// Lock ordering: the engine NEVER calls the journal while holding e.mu or
// an entry's state lock, so the journal may freely call back into the
// engine (capture, frontier building) and the heap.

// Journal records engine mutations durably. Implementations must be safe
// for concurrent use.
type Journal interface {
	// MasterChanged records a master object's full current state. Called
	// on registration and after every version bump. Records are
	// last-state-wins: replay keeps only the newest per OID.
	MasterChanged(rec JournalMaster) error
	// ReplicaDirtied records a replica's locally edited state so an
	// offline edit survives a crash and can be put back after rebirth.
	ReplicaDirtied(rec JournalReplica) error
	// ReplicaCleaned retracts a dirty record: the edit reached its master
	// (or was overwritten by a refresh) and must not be replayed.
	ReplicaCleaned(oid objmodel.OID, newVersion uint64) error
	// ProxyInExported records the RMI object id serving oid, so recovery
	// re-exports the proxy-in at the same id.
	ProxyInExported(oid objmodel.OID, id uint64) error
}

// JournalMaster is the durable image of one master object.
type JournalMaster struct {
	OID      uint64
	TypeName string
	Version  uint64
	State    []byte
	Frontier []FrontierRef

	// The applied-put dedupe triple (see appliedPut): carried on every
	// record, not just put-applied ones, because replay is
	// last-record-wins — a later MarkUpdated record would otherwise
	// erase the exactly-once guard for a retry racing the crash.
	AppliedBase    uint64
	AppliedCRC     uint64
	AppliedVersion uint64
}

// JournalReplica is the durable image of one dirty replica: enough to
// recreate the entry, its provider route, and its outward references.
type JournalReplica struct {
	OID         uint64
	TypeName    string
	Version     uint64
	State       []byte
	Provider    rmi.RemoteRef
	ClusterRoot uint64
	Frontier    []FrontierRef
}

// WithJournal installs the durability journal at construction.
func WithJournal(j Journal) Option {
	return func(e *Engine) { e.journal = j }
}

// SetJournal installs (or clears) the journal at run time. A durable site
// installs it before any application mutation can occur.
func (e *Engine) SetJournal(j Journal) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.journal = j
}

func (e *Engine) getJournal() Journal {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.journal
}

// appliedPut is the exactly-once guard for put retries that straddle a
// master restart: the rmi dedupe table dies with the process, so the
// engine remembers, per master, the last applied update's (base version,
// state checksum) and the version it produced. A retried PutRequest
// matching the pair gets the recorded reply instead of a second apply.
type appliedPut struct {
	base    uint64
	crc     uint64
	version uint64
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func stateCRC(state []byte) uint64 {
	return uint64(crc32.Checksum(state, castagnoli))
}

// journalMaster captures entry and reports it to the journal, if any.
func (e *Engine) journalMaster(entry *heap.Entry) error {
	j := e.getJournal()
	if j == nil {
		return nil
	}
	state, err := e.captureEntry(entry)
	if err != nil {
		return fmt.Errorf("replication: journal capture %v: %w", entry.OID, err)
	}
	frontier, err := e.BuildRecoveryFrontier(entry.Obj)
	if err != nil {
		return fmt.Errorf("replication: journal frontier %v: %w", entry.OID, err)
	}
	rec := JournalMaster{
		OID:      uint64(entry.OID),
		TypeName: entry.TypeName,
		Version:  entry.Version(),
		State:    state,
		Frontier: frontier,
	}
	e.mu.Lock()
	if ap, ok := e.appliedPuts[entry.OID]; ok {
		rec.AppliedBase, rec.AppliedCRC, rec.AppliedVersion = ap.base, ap.crc, ap.version
	}
	e.mu.Unlock()
	return j.MasterChanged(rec)
}

// journalDirtyReplica captures a locally edited replica for the journal.
func (e *Engine) journalDirtyReplica(entry *heap.Entry) error {
	j := e.getJournal()
	if j == nil {
		return nil
	}
	state, err := e.captureEntry(entry)
	if err != nil {
		return fmt.Errorf("replication: journal capture %v: %w", entry.OID, err)
	}
	frontier, err := e.BuildRecoveryFrontier(entry.Obj)
	if err != nil {
		return fmt.Errorf("replication: journal frontier %v: %w", entry.OID, err)
	}
	return j.ReplicaDirtied(JournalReplica{
		OID:         uint64(entry.OID),
		TypeName:    entry.TypeName,
		Version:     entry.Version(),
		State:       state,
		Provider:    entry.Provider(),
		ClusterRoot: uint64(entry.ClusterRoot()),
		Frontier:    frontier,
	})
}

// JournalDirty reports obj's current (locally edited) replica state to
// the journal, if one is installed — the exported form of the dirty-edit
// hook, for layers that mutate replica state outside the engine's own
// paths (the transaction manager journaling parked disconnected commits).
func (e *Engine) JournalDirty(obj any) error {
	entry, ok := e.heap.EntryOf(obj)
	if !ok {
		return fmt.Errorf("replication: journal dirty: %w: %T", heap.ErrUnknownObject, obj)
	}
	return e.journalDirtyReplica(entry)
}

// journalCleanReplica retracts a dirty record after a successful put or a
// refresh that overwrote the local edit.
func (e *Engine) journalCleanReplica(oid objmodel.OID, newVersion uint64) error {
	j := e.getJournal()
	if j == nil {
		return nil
	}
	return j.ReplicaCleaned(oid, newVersion)
}

// journalProxyIn records a proxy-in export.
func (e *Engine) journalProxyIn(oid objmodel.OID, id rmi.ObjID) error {
	j := e.getJournal()
	if j == nil {
		return nil
	}
	return j.ProxyInExported(oid, uint64(id))
}

// BuildRecoveryFrontier builds frontier descriptors for obj's references,
// for durable records. Unlike BuildFrontier it NEVER exports a proxy-in:
// references to local masters are omitted entirely — recovery restores
// all masters first, so bindRefs finds those targets in the heap without
// a descriptor. Everything that leaves the site (replica providers,
// forwarded proxy-outs) is carried. This keeps journaling free of export
// side effects, which would both mutate the table being journaled and
// invert the compactor's lock order.
func (e *Engine) BuildRecoveryFrontier(obj any) ([]FrontierRef, error) {
	var refs []*objmodel.Ref
	if entry, ok := e.heap.EntryOf(obj); ok {
		entry.LockState()
		refs = objmodel.RefsOf(obj)
		entry.UnlockState()
	} else {
		refs = objmodel.RefsOf(obj)
	}
	var out []FrontierRef
	seen := make(map[objmodel.OID]bool)
	for _, ref := range refs {
		toid := ref.OID()
		if toid == 0 || seen[toid] {
			continue
		}
		seen[toid] = true
		if ref.IsResolved() {
			target, err := ref.Resolve()
			if err != nil {
				return nil, err
			}
			te, ok := e.heap.EntryOf(target)
			if !ok {
				return nil, fmt.Errorf("replication: ref target %v not in heap", toid)
			}
			if te.Role == heap.Master {
				continue // rebound from the restored heap, no descriptor needed
			}
			if prov := te.Provider(); !prov.IsZero() {
				out = append(out, FrontierRef{OID: uint64(toid), Provider: prov, TypeName: te.TypeName})
				continue
			}
			// A provider-less replica is only reachable while live; after
			// a restart the reference must re-fault through the master, so
			// there is nothing durable to record. Skip it: recovery leaves
			// the ref unbound only if the target is also gone, in which
			// case a descriptor would not have helped either.
			continue
		}
		if pout, ok := ref.Faulter().(*ProxyOut); ok {
			out = append(out, FrontierRef{OID: uint64(toid), Provider: pout.provider})
		}
	}
	return out, nil
}

// SeedAppliedPut restores a master's exactly-once guard during recovery.
func (e *Engine) SeedAppliedPut(oid objmodel.OID, base, crc, version uint64) {
	if base == 0 && crc == 0 && version == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.appliedPuts[oid] = appliedPut{base: base, crc: crc, version: version}
}

// AppliedPut reports a master's current exactly-once guard (zeroes when
// no put has been applied). Snapshots carry it forward through compaction.
func (e *Engine) AppliedPut(oid objmodel.OID) (base, crc, version uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ap := e.appliedPuts[oid]
	return ap.base, ap.crc, ap.version
}

// RestoreProxyIn re-exports the proxy-in serving oid at the exact object
// id its previous incarnation used, so provider references held by remote
// replicas keep resolving after a restart.
func (e *Engine) RestoreProxyIn(oid objmodel.OID, id uint64) error {
	entry, ok := e.heap.Get(oid)
	if !ok {
		return fmt.Errorf("replication: restore proxy-in: %w: %v", heap.ErrUnknownObject, oid)
	}
	pin := &ProxyIn{eng: e, entry: entry}
	ref, err := e.rt.ExportWithID(rmi.ObjID(id), pin, "obiwan.IProvideRemote")
	if err != nil {
		return fmt.Errorf("replication: restore proxy-in %v at id %d: %w", oid, id, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.proxyIns[oid] = ref
	e.gc.ProxyInExported()
	return nil
}

// RestoreClusterMember re-registers a recovered replica's cluster
// membership so PutCluster can ship it after a restart. Only journaled
// (dirty) members are restored, so a recovered cluster ships as the dirty
// subset of its former self — the master applies each member
// individually, which is exactly what a partial ClusterPutRequest does.
func (e *Engine) RestoreClusterMember(root, member objmodel.OID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, m := range e.clusters[root] {
		if m == member {
			return
		}
	}
	e.clusters[root] = append(e.clusters[root], member)
	e.inCluster[member] = root
}

// ProxyInIDs returns the current proxy-in export table (OID → RMI object
// id) for snapshotting.
func (e *Engine) ProxyInIDs() map[objmodel.OID]uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[objmodel.OID]uint64, len(e.proxyIns))
	for oid, ref := range e.proxyIns {
		out[oid] = uint64(ref.ID)
	}
	return out
}
