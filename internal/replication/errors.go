package replication

import (
	"errors"
	"fmt"

	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

// ErrUnavailable marks a replication operation that failed because the
// provider site could not be reached: the link is disconnected, the
// message was lost repeatedly, or the call deadline expired — after the
// RMI retry policy was exhausted. It is the typed surface of the paper's
// mobile scenario: the application can distinguish "the master said no"
// (a bare error) from "the master cannot be asked right now" (wrapped
// with ErrUnavailable), keep working on its replicas, and re-issue the
// operation after reconnection.
//
// Test with errors.Is(err, replication.ErrUnavailable). The underlying
// transport error stays in the chain, so errors.Is(err,
// netsim.ErrDisconnected) etc. keep working too.
var ErrUnavailable = errors.New("replication: provider unavailable")

// wrapUnavailable tags connectivity failures with ErrUnavailable and
// passes every other error through untouched.
func wrapUnavailable(err error) error {
	if err == nil {
		return nil
	}
	if transport.IsTransient(err) || errors.Is(err, rmi.ErrTimeout) {
		return fmt.Errorf("%w: %w", ErrUnavailable, err)
	}
	return err
}
