package replication

import (
	"errors"
	"fmt"
	"strings"

	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

// ErrUnavailable marks a replication operation that failed because the
// provider site could not be reached: the link is disconnected, the
// message was lost repeatedly, or the call deadline expired — after the
// RMI retry policy was exhausted. It is the typed surface of the paper's
// mobile scenario: the application can distinguish "the master said no"
// (a bare error) from "the master cannot be asked right now" (wrapped
// with ErrUnavailable), keep working on its replicas, and re-issue the
// operation after reconnection.
//
// Test with errors.Is(err, replication.ErrUnavailable). The underlying
// transport error stays in the chain, so errors.Is(err,
// netsim.ErrDisconnected) etc. keep working too.
var ErrUnavailable = errors.New("replication: provider unavailable")

// wrapUnavailable tags connectivity failures with ErrUnavailable and
// passes every other error through untouched.
func wrapUnavailable(err error) error {
	if err == nil {
		return nil
	}
	if transport.IsTransient(err) || errors.Is(err, rmi.ErrTimeout) {
		return fmt.Errorf("%w: %w", ErrUnavailable, err)
	}
	return err
}

// ErrNotLeader marks an operation that reached a master-group member
// which is not (or no longer) the group's leader. Unlike ErrUnavailable
// it guarantees the operation did NOT execute — the member refused before
// touching state — so callers may re-route freely. Test with
// errors.Is(err, replication.ErrNotLeader); the redirect hint, when the
// follower knows one, is recoverable with NotLeaderHint even after the
// error crossed an RMI boundary.
var ErrNotLeader = errors.New("replication: not the group leader")

// notLeaderMarker is the wire-surviving prefix a NotLeaderError renders
// to. RMI app faults flatten errors to strings, so the hint rides inside
// the message text and NotLeaderHint parses it back out.
const notLeaderMarker = "replication: not the group leader; hint="

// NotLeaderError is the typed redirect a master-group follower answers
// demands and puts with. Hint is the member the follower believes leads
// (empty when an election is in progress).
type NotLeaderError struct {
	Hint transport.Addr
}

func (e *NotLeaderError) Error() string {
	return notLeaderMarker + string(e.Hint)
}

// Is makes errors.Is(err, ErrNotLeader) match the typed redirect.
func (e *NotLeaderError) Is(target error) bool { return target == ErrNotLeader }

// NotLeaderHint extracts the leader hint from a not-leader failure, local
// or remote. ok reports whether err is a not-leader failure at all; the
// returned hint may still be empty (no leader known).
func NotLeaderHint(err error) (hint transport.Addr, ok bool) {
	var nl *NotLeaderError
	if errors.As(err, &nl) {
		return nl.Hint, true
	}
	var re *rmi.RemoteError
	if errors.As(err, &re) && re.IsApp() {
		if i := strings.Index(re.Message, notLeaderMarker); i >= 0 {
			rest := re.Message[i+len(notLeaderMarker):]
			// The marker ends the wrapped chain's message, but be robust
			// to suffixes appended by intermediate wrapping.
			if j := strings.IndexAny(rest, " \n:"); j >= 0 {
				rest = rest[:j]
			}
			return transport.Addr(rest), true
		}
	}
	return "", false
}

// isNotLeader reports whether err is a not-leader failure in any form.
func isNotLeader(err error) bool {
	if errors.Is(err, ErrNotLeader) {
		return true
	}
	_, ok := NotLeaderHint(err)
	return ok
}
