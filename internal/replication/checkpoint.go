package replication

import (
	"fmt"
	"io"
	"sort"

	"obiwan/internal/codec"
	"obiwan/internal/heap"
	"obiwan/internal/objmodel"
)

// Checkpointing makes a master site's object universe durable: the state,
// identities, and versions of every master object (plus frontier
// descriptors for any references to objects mastered elsewhere) serialize
// to a writer and restore into a fresh site. After a restore the site
// mints new OIDs above the checkpointed range, replicas elsewhere keep
// their identities valid, and the application re-binds its graph roots in
// the name server (name bindings live there, not here).
//
// The original prototype had no durability story — a crashed master lost
// its objects. This is the obvious production gap, so the Go
// implementation closes it.

// checkpointMagic guards the stream format; bump ckptVersion on change.
const (
	checkpointMagic = "OBICKPT"
	ckptVersion     = 1
)

// ckptRecord is one master object in a checkpoint.
type ckptRecord struct {
	OID      uint64
	TypeName string
	Version  uint64
	State    []byte
	Frontier []FrontierRef
}

// CheckpointMasters serializes every master object at this site to w.
// Replicas are not checkpointed: they are re-fetchable from their masters.
func (e *Engine) CheckpointMasters(w io.Writer) error {
	entries := e.heap.Entries()
	sort.Slice(entries, func(i, j int) bool { return entries[i].OID < entries[j].OID })

	enc := codec.NewEncoder(1024)
	enc.WriteRaw([]byte(checkpointMagic))
	enc.WriteUvarint(ckptVersion)
	enc.WriteUvarint(uint64(e.heap.SiteID()))

	var records []ckptRecord
	for _, en := range entries {
		if en.Role != heap.Master {
			continue
		}
		state, err := e.captureEntry(en)
		if err != nil {
			return fmt.Errorf("replication: checkpoint %v: %w", en.OID, err)
		}
		frontier, err := e.BuildFrontier(en.Obj)
		if err != nil {
			return fmt.Errorf("replication: checkpoint %v frontier: %w", en.OID, err)
		}
		records = append(records, ckptRecord{
			OID:      uint64(en.OID),
			TypeName: en.TypeName,
			Version:  en.Version(),
			State:    state,
			Frontier: frontier,
		})
	}
	enc.WriteUvarint(uint64(len(records)))
	for i := range records {
		if err := enc.EncodeStruct(e.reg, &records[i]); err != nil {
			return fmt.Errorf("replication: checkpoint record %d: %w", i, err)
		}
	}
	if _, err := w.Write(enc.Bytes()); err != nil {
		return fmt.Errorf("replication: write checkpoint: %w", err)
	}
	return nil
}

// RestoreMasters reads a checkpoint and recreates its master objects in
// this site's heap, preserving identities and versions. The heap's OID
// allocator is advanced past the restored range. Restoring into a
// non-empty site is allowed as long as identities do not collide.
// It returns the restored objects keyed by OID so the application can
// re-bind its roots.
func (e *Engine) RestoreMasters(r io.Reader) (map[objmodel.OID]any, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("replication: read checkpoint: %w", err)
	}
	dec := codec.NewDecoder(raw)
	magic, err := dec.ReadRaw(len(checkpointMagic))
	if err != nil || string(magic) != checkpointMagic {
		return nil, fmt.Errorf("replication: not a checkpoint stream")
	}
	version, err := dec.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if version != ckptVersion {
		return nil, fmt.Errorf("replication: checkpoint version %d not supported", version)
	}
	siteID, err := dec.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if uint16(siteID) != e.heap.SiteID() {
		return nil, fmt.Errorf("replication: checkpoint belongs to site %d, this heap is %d",
			siteID, e.heap.SiteID())
	}
	count, err := dec.ReadUvarint()
	if err != nil {
		return nil, err
	}

	// Pass 1: instantiate and register every master with its identity.
	records := make([]ckptRecord, count)
	restored := make(map[objmodel.OID]any, count)
	for i := range records {
		if err := dec.DecodeStruct(e.reg, &records[i]); err != nil {
			return nil, fmt.Errorf("replication: checkpoint record %d: %w", i, err)
		}
		rec := &records[i]
		info, ok := objmodel.InfoByName(rec.TypeName)
		if !ok {
			return nil, fmt.Errorf("replication: checkpoint has unknown type %q", rec.TypeName)
		}
		obj := info.New()
		if err := objmodel.RestoreState(e.reg, obj, rec.State); err != nil {
			return nil, fmt.Errorf("replication: restore %d: %w", rec.OID, err)
		}
		if err := e.heap.AddMasterWithOID(obj, objmodel.OID(rec.OID), rec.TypeName, rec.Version); err != nil {
			return nil, err
		}
		restored[objmodel.OID(rec.OID)] = obj
	}

	// Pass 2: bind references now that every local target exists.
	for i := range records {
		rec := &records[i]
		frontier := make(map[objmodel.OID]FrontierRef, len(rec.Frontier))
		for _, fr := range rec.Frontier {
			frontier[objmodel.OID(fr.OID)] = fr
		}
		if err := e.bindRefs(restored[objmodel.OID(rec.OID)], frontier, DefaultSpec); err != nil {
			return nil, fmt.Errorf("replication: rebind %d: %w", rec.OID, err)
		}
	}
	return restored, nil
}

func init() {
	codec.MustRegister("obiwan.repl.ckptRecord", ckptRecord{})
}
