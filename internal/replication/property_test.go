package replication

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"obiwan/internal/heap"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

// gnode is a general graph node for the property tests.
type gnode struct {
	Label string
	Data  []byte
	Kids  []*objmodel.Ref
}

func (g *gnode) Name() string { return g.Label }

func init() {
	objmodel.MustRegisterType("repl_test.gnode", (*gnode)(nil))
}

// buildRandomGraph creates a random connected digraph of n nodes at the
// master: node i gets edges to random nodes (possibly forming cycles,
// diamonds, self-loops), with node 0 reaching everything through a
// spanning chain.
func buildRandomGraph(t *testing.T, s *testSite, rng *rand.Rand, n int) []*gnode {
	t.Helper()
	nodes := make([]*gnode, n)
	for i := range nodes {
		nodes[i] = &gnode{
			Label: fmt.Sprintf("g%d", i),
			Data:  make([]byte, rng.Intn(64)),
		}
		rng.Read(nodes[i].Data)
		if _, err := s.engine.RegisterMaster(nodes[i]); err != nil {
			t.Fatal(err)
		}
	}
	addEdge := func(from, to int) {
		ref, err := s.engine.NewRef(nodes[to])
		if err != nil {
			t.Fatal(err)
		}
		nodes[from].Kids = append(nodes[from].Kids, ref)
	}
	// Spanning chain guarantees reachability from node 0.
	for i := 0; i < n-1; i++ {
		addEdge(i, i+1)
	}
	// Random extra edges: back, forward, self.
	extra := rng.Intn(2 * n)
	for i := 0; i < extra; i++ {
		addEdge(rng.Intn(n), rng.Intn(n))
	}
	return nodes
}

// isomorphic checks that the replica graph rooted at rr mirrors the master
// graph rooted at mr: same labels, same payloads, same edge structure,
// with replica identity consistent (one replica per master node).
func isomorphic(mr *gnode, rr *gnode) error {
	mapping := map[*gnode]*gnode{} // master → replica
	var walk func(m, r *gnode) error
	walk = func(m, r *gnode) error {
		if prev, seen := mapping[m]; seen {
			if prev != r {
				return fmt.Errorf("node %s mapped to two replicas", m.Label)
			}
			return nil
		}
		mapping[m] = r
		if m.Label != r.Label {
			return fmt.Errorf("label %q vs %q", m.Label, r.Label)
		}
		if string(m.Data) != string(r.Data) {
			return fmt.Errorf("node %s payload mismatch", m.Label)
		}
		if len(m.Kids) != len(r.Kids) {
			return fmt.Errorf("node %s has %d vs %d edges", m.Label, len(m.Kids), len(r.Kids))
		}
		for i := range m.Kids {
			mk, err := objmodel.Deref[*gnode](m.Kids[i])
			if err != nil {
				return fmt.Errorf("master deref %s[%d]: %w", m.Label, i, err)
			}
			rk, err := objmodel.Deref[*gnode](r.Kids[i])
			if err != nil {
				return fmt.Errorf("replica deref %s[%d]: %w", m.Label, i, err)
			}
			if err := walk(mk, rk); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(mr, rr)
}

// TestQuickTransitiveReplicationIsomorphic: for random graphs, transitive
// replication yields a structurally identical graph at the client, with
// one replica per master object (sharing and cycles preserved).
func TestQuickTransitiveReplicationIsomorphic(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sizeRaw%20) + 2
		master, client := twoSites(t)
		nodes := buildRandomGraph(t, master, rng, n)

		desc, err := master.engine.ExportObject(nodes[0])
		if err != nil {
			t.Fatal(err)
		}
		cref := client.engine.RefFromDescriptor(desc, GetSpec{Mode: Transitive})
		root, err := objmodel.Deref[*gnode](cref)
		if err != nil {
			t.Logf("replicate: %v", err)
			return false
		}
		if client.heap.Len() != n {
			t.Logf("heap %d want %d", client.heap.Len(), n)
			return false
		}
		if err := isomorphic(nodes[0], root); err != nil {
			t.Logf("isomorphism: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// newRetrySite is newTestSite with an explicit client retry policy.
func newRetrySite(t *testing.T, net transport.Network, name string, siteID uint16, p rmi.RetryPolicy) *testSite {
	t.Helper()
	rt, err := rmi.NewRuntime(net, transport.Addr(name), rmi.WithRetryPolicy(p))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	h := heap.New(siteID)
	return &testSite{name: name, rt: rt, heap: h, engine: NewEngine(rt, h)}
}

// TestQuickIncrementalWalkUnderFaultsIsomorphic: the incremental walk of a
// random graph stays correct when the client→master link runs a seeded
// fault schedule. Every demand either completes (possibly after transparent
// retries) or fails typed with ErrUnavailable; re-walking after failures
// makes progress (the schedule always ends reconnected), and the final
// replica graph is isomorphic to the master graph.
func TestQuickIncrementalWalkUnderFaultsIsomorphic(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sizeRaw%10) + 2
		net := transport.NewMemNetworkSeeded(netsim.Loopback, seed)
		master := newTestSite(t, net, "s2", 2)
		client := newRetrySite(t, net, "s1", 1, rmi.RetryPolicy{
			MaxAttempts: 8,
			BaseBackoff: 200 * time.Microsecond,
			MaxBackoff:  2 * time.Millisecond,
			Multiplier:  2,
		})
		nodes := buildRandomGraph(t, master, rng, n)
		desc, err := master.engine.ExportObject(nodes[0])
		if err != nil {
			t.Fatal(err)
		}
		net.SetFaultSchedule("s1", "s2", netsim.RandomSchedule(seed, 40, 3, 4, 3))
		cref := client.engine.RefFromDescriptor(desc, GetSpec{Mode: Incremental, Batch: 1})

		// A walk step may exhaust its retries mid-outage; such failures must
		// be typed, and re-walking must converge: every attempt (even a
		// rejected one) advances the schedule clock toward the scripted
		// reconnect, so the round bound is generous, not load-bearing.
		var root *gnode
		for round := 0; ; round++ {
			root, err = objmodel.Deref[*gnode](cref)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrUnavailable) {
				t.Logf("seed %d: root demand failed untyped: %v", seed, err)
				return false
			}
			if round > 100 {
				t.Logf("seed %d: root demand never recovered: %v", seed, err)
				return false
			}
		}
		for round := 0; ; round++ {
			err = isomorphic(nodes[0], root)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrUnavailable) {
				t.Logf("seed %d: walk failed untyped: %v", seed, err)
				return false
			}
			if round > 200 {
				t.Logf("seed %d: walk never recovered: %v", seed, err)
				return false
			}
		}
		if client.heap.Len() != n {
			t.Logf("seed %d: heap %d want %d", seed, client.heap.Len(), n)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIncrementalWalkEqualsTransitive: walking the same random graph
// with one-at-a-time faults ends in the same structure as a single
// transitive get.
func TestQuickIncrementalWalkEqualsTransitive(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sizeRaw%12) + 2
		master, client := twoSites(t)
		nodes := buildRandomGraph(t, master, rng, n)
		desc, err := master.engine.ExportObject(nodes[0])
		if err != nil {
			t.Fatal(err)
		}
		cref := client.engine.RefFromDescriptor(desc, GetSpec{Mode: Incremental, Batch: 1})
		root, err := objmodel.Deref[*gnode](cref)
		if err != nil {
			return false
		}
		// Drive every fault by BFS over the replica graph.
		if err := isomorphic(nodes[0], root); err != nil {
			t.Logf("isomorphism after incremental walk: %v", err)
			return false
		}
		if client.heap.Len() != n {
			t.Logf("heap %d want %d", client.heap.Len(), n)
			return false
		}
		// Every proxy-out created during the walk was reclaimed or served
		// from the heap; none leak.
		gc := client.engine.GC().Snapshot()
		if gc.LiveProxyOuts() != 0 {
			t.Logf("leaked proxy-outs: %d", gc.LiveProxyOuts())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
