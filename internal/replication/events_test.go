package replication

import (
	"obiwan/internal/objmodel"
	"sync"
	"testing"
)

// eventLog collects engine events for assertions.
type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *eventLog) observe(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

func (l *eventLog) byKind(k EventKind) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, e := range l.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

func TestEventTraceOfAWalk(t *testing.T) {
	master, client := twoSites(t)
	serverLog, clientLog := &eventLog{}, &eventLog{}
	master.engine.SetEventObserver(serverLog.observe)
	client.engine.SetEventObserver(clientLog.observe)

	docs := buildChain(t, master, 4, 8)
	ref := exportHead(t, master, client, docs[0], GetSpec{Mode: Incremental, Batch: 2})
	if err := walkChain(t, ref, 4); err != nil {
		t.Fatal(err)
	}

	// Two demands of two objects each.
	assembled := serverLog.byKind(EventPayloadAssembled)
	if len(assembled) != 2 {
		t.Fatalf("assembled: %d events", len(assembled))
	}
	for _, e := range assembled {
		if e.Objects != 2 || e.Requester != "s1" {
			t.Fatalf("assembled event: %+v", e)
		}
	}
	materialized := clientLog.byKind(EventPayloadMaterialized)
	if len(materialized) != 2 {
		t.Fatalf("materialized: %d events", len(materialized))
	}
	// Exactly two faults crossed the network; batched neighbours were
	// bound at materialization and never fault.
	faults := clientLog.byKind(EventFaultResolved)
	if len(faults) != 2 {
		t.Fatalf("faults: %d events", len(faults))
	}
	for _, e := range faults {
		if e.FromHeap {
			t.Fatalf("chain walk should not heap-serve: %+v", e)
		}
		if e.Objects != 2 || e.Elapsed < 0 {
			t.Fatalf("fault event: %+v", e)
		}
	}
	if s := faults[0].String(); s == "" {
		t.Fatal("event string")
	}
}

func TestEventTraceHeapServedFault(t *testing.T) {
	// Two roots share a target: the second path's fault is served from the
	// heap and flagged FromHeap.
	master, client := twoSites(t)
	clientLog := &eventLog{}
	client.engine.SetEventObserver(clientLog.observe)

	shared := &doc{Name: "shared"}
	left := &doc{Name: "left"}
	right := &doc{Name: "right"}
	for _, o := range []*doc{shared, left, right} {
		if _, err := master.engine.RegisterMaster(o); err != nil {
			t.Fatal(err)
		}
	}
	var err error
	if left.Next, err = master.engine.NewRef(shared); err != nil {
		t.Fatal(err)
	}
	if right.Next, err = master.engine.NewRef(shared); err != nil {
		t.Fatal(err)
	}
	refL := exportHead(t, master, client, left, DefaultSpec)
	refR := exportHead(t, master, client, right, DefaultSpec)
	l, err := derefDoc(t, refL)
	if err != nil {
		t.Fatal(err)
	}
	r, err := derefDoc(t, refR)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := derefDoc(t, l.Next); err != nil {
		t.Fatal(err)
	}
	if _, err := derefDoc(t, r.Next); err != nil {
		t.Fatal(err)
	}
	heapServed := 0
	for _, e := range clientLog.byKind(EventFaultResolved) {
		if e.FromHeap {
			heapServed++
		}
	}
	if heapServed != 1 {
		t.Fatalf("heap-served faults: %d, want 1", heapServed)
	}
}

func TestEventTraceOfAPut(t *testing.T) {
	master, client := twoSites(t)
	serverLog, clientLog := &eventLog{}, &eventLog{}
	master.engine.SetEventObserver(serverLog.observe)
	client.engine.SetEventObserver(clientLog.observe)

	docs := buildChain(t, master, 1, 8)
	ref := exportHead(t, master, client, docs[0], DefaultSpec)
	a, err := derefDoc(t, ref)
	if err != nil {
		t.Fatal(err)
	}
	a.Name = "edited"
	if err := client.engine.Put(a); err != nil {
		t.Fatal(err)
	}
	if got := serverLog.byKind(EventPutApplied); len(got) != 1 || got[0].Version != 2 {
		t.Fatalf("put-applied: %+v", got)
	}
	if got := clientLog.byKind(EventPutShipped); len(got) != 1 || got[0].Version != 2 {
		t.Fatalf("put-shipped: %+v", got)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EventFaultResolved, EventPayloadAssembled, EventPayloadMaterialized,
		EventPutApplied, EventPutShipped, EventKind(99),
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d string %q", k, s)
		}
		seen[s] = true
	}
}

// walkChain drives n invocations down a doc chain.
func walkChain(t *testing.T, ref *objmodel.Ref, n int) error {
	t.Helper()
	cur := ref
	for i := 0; i < n; i++ {
		if _, err := cur.Invoke("Title"); err != nil {
			return err
		}
		d, err := objmodel.Deref[*doc](cur)
		if err != nil {
			return err
		}
		cur = d.Next
	}
	return nil
}

// derefDoc resolves a ref to *doc.
func derefDoc(t *testing.T, ref *objmodel.Ref) (*doc, error) {
	t.Helper()
	return objmodel.Deref[*doc](ref)
}

func TestAddEventObserverFanOut(t *testing.T) {
	master, client := twoSites(t)

	// Three observers on the client engine: the legacy slot plus two
	// fan-out registrations. All must see the same events.
	slotLog, addLogA, addLogB := &eventLog{}, &eventLog{}, &eventLog{}
	client.engine.SetEventObserver(slotLog.observe)
	removeA := client.engine.AddEventObserver(addLogA.observe)
	removeB := client.engine.AddEventObserver(addLogB.observe)

	docs := buildChain(t, master, 2, 8)
	ref := exportHead(t, master, client, docs[0], GetSpec{Mode: Incremental, Batch: 2})
	if _, err := client.engine.Replicate(ref, GetSpec{Mode: Incremental, Batch: 2}); err != nil {
		t.Fatal(err)
	}

	nFault := len(slotLog.byKind(EventFaultResolved))
	if nFault == 0 {
		t.Fatal("slot observer saw no fault events")
	}
	for name, l := range map[string]*eventLog{"addA": addLogA, "addB": addLogB} {
		if got := len(l.byKind(EventFaultResolved)); got != nFault {
			t.Fatalf("%s saw %d fault events, slot saw %d", name, got, nFault)
		}
	}

	// fault emits one more EventFaultResolved (served from the heap via
	// identity dedupe — the docs are already replicated).
	fault := func() {
		ref2 := exportHead(t, master, client, docs[0], GetSpec{Mode: Incremental, Batch: 1})
		if _, err := client.engine.Replicate(ref2, GetSpec{Mode: Incremental, Batch: 1}); err != nil {
			t.Fatal(err)
		}
	}

	// Removal detaches exactly that observer; double-remove is harmless.
	removeA()
	removeA()
	beforeA := len(addLogA.byKind(EventFaultResolved))
	fault()
	if got := len(addLogA.byKind(EventFaultResolved)); got != beforeA {
		t.Fatalf("removed observer still firing: %d -> %d", beforeA, got)
	}
	if got := len(addLogB.byKind(EventFaultResolved)); got <= nFault {
		t.Fatalf("remaining observer stopped firing: %d", got)
	}
	removeB()

	// The replaceable slot keeps its replace semantics.
	client.engine.SetEventObserver(nil)
	before := len(slotLog.byKind(EventFaultResolved))
	fault()
	if got := len(slotLog.byKind(EventFaultResolved)); got != before {
		t.Fatalf("cleared slot observer still firing: %d -> %d", before, got)
	}
}
