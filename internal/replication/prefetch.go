package replication

import (
	"sync"

	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
)

// Prefetcher resolves object faults ahead of the application — the paper's
// footnote 3: "a perfect mechanism of pre-fetching in the background can
// completely eliminate the latency [of incremental replication]".
//
// Start a prefetcher over a site's engine, hand it references (typically
// the root just obtained from a Lookup), and it walks the frontier in the
// background, demanding objects with the references' own specs while the
// application works on what is already local. The walk is bounded by a
// hop budget so a prefetch cannot accidentally pull a huge graph.
//
// A Prefetcher owns its goroutines: Close waits for them, so none outlive
// the component that started them.
type Prefetcher struct {
	eng   *Engine
	clock netsim.Clock

	mu     sync.Mutex
	closed bool
	wg     *netsim.WaitGroup

	// stats
	resolved uint64
	failed   uint64
}

// NewPrefetcher builds a prefetcher over eng. Its walker goroutines run on
// the engine runtime's clock, so prefetching stays sound inside
// virtual-clock simulations.
func NewPrefetcher(eng *Engine) *Prefetcher {
	clock := eng.Runtime().Clock()
	return &Prefetcher{eng: eng, clock: clock, wg: netsim.NewWaitGroup(clock)}
}

// Prefetch schedules a background walk from ref, resolving up to budget
// object faults (0 means the whole reachable frontier). It returns
// immediately; Wait blocks until outstanding walks finish.
func (p *Prefetcher) Prefetch(ref *objmodel.Ref, budget int) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.wg.Add(1)
	p.mu.Unlock()

	p.clock.Go(func() {
		defer p.wg.Done()
		p.walk(ref, budget)
	})
}

// walk resolves faults breadth-first from ref until the budget runs out or
// the frontier is exhausted. Failures (e.g. a disconnection) stop the walk;
// the application's own fault will retry later.
func (p *Prefetcher) walk(root *objmodel.Ref, budget int) {
	queue := []*objmodel.Ref{root}
	seen := make(map[objmodel.OID]bool)
	for len(queue) > 0 {
		if p.isClosed() {
			return
		}
		ref := queue[0]
		queue = queue[1:]
		oid := ref.OID()
		if oid != 0 && seen[oid] {
			continue
		}
		seen[oid] = true

		wasResolved := ref.IsResolved()
		obj, err := ref.Resolve()
		if err != nil {
			p.mu.Lock()
			p.failed++
			p.mu.Unlock()
			return
		}
		if !wasResolved {
			p.mu.Lock()
			p.resolved++
			done := budget > 0 && p.resolved >= uint64(budget)
			p.mu.Unlock()
			if done {
				return
			}
		}
		queue = append(queue, objmodel.RefsOf(obj)...)
	}
}

// Wait blocks until all scheduled walks have finished.
func (p *Prefetcher) Wait() { p.wg.Wait() }

// Close stops accepting work, interrupts running walks at the next fault
// boundary, and waits for them.
func (p *Prefetcher) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Prefetcher) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Stats returns (faults resolved ahead of the application, walks aborted
// by errors).
func (p *Prefetcher) Stats() (resolved, failed uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.resolved, p.failed
}
