package replication

import (
	"errors"
	"testing"

	"obiwan/internal/heap"
	"obiwan/internal/objmodel"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

func TestSnapshotRoundTrip(t *testing.T) {
	master, _ := twoSites(t)
	docs := buildChain(t, master, 2, 8)

	snap, err := master.engine.CaptureSnapshot(docs[0])
	if err != nil {
		t.Fatal(err)
	}
	docs[0].Name = "mutated"
	docs[0].Next = nil
	if err := master.engine.RestoreSnapshot(docs[0], snap); err != nil {
		t.Fatal(err)
	}
	if docs[0].Name != "doc-0" {
		t.Fatalf("restored name: %q", docs[0].Name)
	}
	if docs[0].Next == nil || !docs[0].Next.IsResolved() {
		t.Fatal("restored ref must rebind locally")
	}
	target, err := objmodel.Deref[*doc](docs[0].Next)
	if err != nil || target != docs[1] {
		t.Fatalf("rebind target: %v %v", target, err)
	}
}

func TestSnapshotOfUnmanagedObject(t *testing.T) {
	master, _ := twoSites(t)
	loose := &doc{Name: "loose"}
	snap, err := master.engine.CaptureSnapshot(loose)
	if err != nil {
		t.Fatal(err)
	}
	loose.Name = "changed"
	if err := master.engine.RestoreSnapshot(loose, snap); err != nil {
		t.Fatal(err)
	}
	if loose.Name != "loose" {
		t.Fatalf("restored: %q", loose.Name)
	}
}

func TestBuildFrontierAndRestoreWithFrontier(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 3, 8)

	// Replicate only the head at the client.
	ref := exportHead(t, master, client, docs[0], DefaultSpec)
	replica, err := objmodel.Deref[*doc](ref)
	if err != nil {
		t.Fatal(err)
	}

	// Master-side: capture head state + frontier (its edge to doc-1).
	frontier, err := master.engine.BuildFrontier(docs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) != 1 {
		t.Fatalf("frontier: %+v", frontier)
	}
	docs[0].Name = "pushed"
	state, err := master.engine.CaptureSnapshot(docs[0])
	if err != nil {
		t.Fatal(err)
	}

	// Client-side: apply the state; the ref rebinds through the frontier.
	if err := client.engine.RestoreWithFrontier(replica, state, frontier); err != nil {
		t.Fatal(err)
	}
	if replica.Name != "pushed" {
		t.Fatalf("restored: %q", replica.Name)
	}
	res, err := replica.Next.Invoke("Title")
	if err != nil || res[0] != "doc-1" {
		t.Fatalf("frontier rebind: %v %v", res, err)
	}
}

func TestEngineAccessorsAndSetters(t *testing.T) {
	master, _ := twoSites(t)
	eng := master.engine
	if eng.Heap() != master.heap || eng.Runtime() != master.rt || eng.GC() == nil {
		t.Fatal("accessors")
	}
	eng.SetPolicy(nil) // restores accept-all without panicking
	if err := eng.getPolicy().ApplyPut(1, 2, 3); err != nil {
		t.Fatal("accept-all default")
	}
	called := false
	eng.SetCrossover(func(transport.Addr, objmodel.OID, uint64) bool {
		called = true
		return true
	})
	if c := eng.getCrossover(); c == nil || !c("x", 1, 1) || !called {
		t.Fatal("crossover setter")
	}
}

func TestProxyAccessors(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 1, 8)
	desc, err := master.engine.ExportObject(docs[0])
	if err != nil {
		t.Fatal(err)
	}
	pout := client.engine.newProxyOut(objmodel.OID(desc.OID), desc.Provider, DefaultSpec)
	if pout.OID() != objmodel.OID(desc.OID) || pout.Provider() != desc.Provider {
		t.Fatal("proxy-out accessors")
	}
	// Default crossover: always prefer local.
	if !pout.PreferLocal(1) {
		t.Fatal("default PreferLocal")
	}

	// Version over RMI.
	res, err := client.rt.Call(desc.Provider, "Version")
	if err != nil || res[0] != uint64(1) {
		t.Fatalf("version: %v %v", res, err)
	}
}

func TestProxyInGetNilSpecDefaults(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 2, 8)
	desc, err := master.engine.ExportObject(docs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Passing nil spec over RMI uses the default (batch 1).
	res, err := client.rt.Call(desc.Provider, "Get", nil, "s1")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := res[0].(*Payload)
	if !ok || len(p.Objects) != 1 || len(p.Frontier) != 1 {
		t.Fatalf("payload: %#v", res[0])
	}
}

func TestPutAddressedToWrongProxy(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 2, 8)
	d0, err := master.engine.ExportObject(docs[0])
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := master.heap.EntryOf(docs[1])
	req := &PutRequest{OID: uint64(e1.OID), BaseVersion: 1, State: []byte{}}
	if _, err := client.rt.Call(d0.Provider, "Put", req); err == nil {
		t.Fatal("put addressed to the wrong proxy-in must fail")
	}
}

func TestRefreshErrorPaths(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 1, 8)
	if err := client.engine.Refresh(&doc{}); !errors.Is(err, heap.ErrUnknownObject) {
		t.Fatalf("unknown: %v", err)
	}
	if err := master.engine.Refresh(docs[0]); !errors.Is(err, ErrNotReplica) {
		t.Fatalf("master: %v", err)
	}
}

func TestReplicateOnResolvedRefIsNoop(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 1, 8)
	ref := exportHead(t, master, client, docs[0], DefaultSpec)
	if _, err := ref.Resolve(); err != nil {
		t.Fatal(err)
	}
	calls := client.rt.Stats().CallsSent
	obj, err := client.engine.Replicate(ref, GetSpec{Mode: Transitive})
	if err != nil || obj == nil {
		t.Fatalf("replicate resolved: %v %v", obj, err)
	}
	if client.rt.Stats().CallsSent != calls {
		t.Fatal("resolved ref must not re-demand")
	}
	// A ref with no proxy-out faulter cannot be replicated.
	bare := objmodel.NewFaultingRef(1, nil, nil)
	if _, err := client.engine.Replicate(bare, DefaultSpec); !errors.Is(err, objmodel.ErrUnboundRef) {
		t.Fatalf("bare ref: %v", err)
	}
}

func TestEventObserverOption(t *testing.T) {
	master, _ := twoSites(t)
	var seen int
	eng := NewEngine(master.rt, master.heap, WithEventObserver(func(Event) { seen++ }))
	obj := &doc{Name: "observed"}
	if _, err := eng.RegisterMaster(obj); err != nil {
		t.Fatal(err)
	}
	entry, _ := eng.Heap().EntryOf(obj)
	if _, err := eng.assemble(telemetry.SpanContext{}, entry, DefaultSpec, "tester"); err != nil {
		t.Fatal(err)
	}
	if seen == 0 {
		t.Fatal("observer installed via option never fired")
	}
}
