package replication

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"obiwan/internal/heap"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

// doc is the test object type: a list element with a payload and a Next
// reference — the shape of both the paper's A→B→C walkthrough and its
// evaluation workload.
type doc struct {
	Name string
	Body []byte
	Next *objmodel.Ref
}

func (d *doc) Title() string { return d.Name }

func (d *doc) SetBody(b []byte) { d.Body = b }

func (d *doc) Size() int { return len(d.Body) }

func init() {
	objmodel.MustRegisterType("repl_test.doc", (*doc)(nil))
}

// testSite bundles one site's runtime + heap + engine.
type testSite struct {
	name   string
	rt     *rmi.Runtime
	heap   *heap.Heap
	engine *Engine
}

func newTestSite(t *testing.T, net transport.Network, name string, siteID uint16, opts ...Option) *testSite {
	t.Helper()
	rt, err := rmi.NewRuntime(net, transport.Addr(name))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	h := heap.New(siteID)
	return &testSite{name: name, rt: rt, heap: h, engine: NewEngine(rt, h, opts...)}
}

// buildChain creates a master list a→b→c... of n docs at site s and returns
// the objects, head first.
func buildChain(t *testing.T, s *testSite, n int, bodySize int) []*doc {
	t.Helper()
	docs := make([]*doc, n)
	for i := range docs {
		docs[i] = &doc{Name: fmt.Sprintf("doc-%d", i), Body: make([]byte, bodySize)}
		if _, err := s.engine.RegisterMaster(docs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n-1; i++ {
		ref, err := s.engine.NewRef(docs[i+1])
		if err != nil {
			t.Fatal(err)
		}
		docs[i].Next = ref
	}
	return docs
}

// exportHead exports the chain head at the master and returns a client-side
// faulting ref with the given spec.
func exportHead(t *testing.T, master, client *testSite, head *doc, spec GetSpec) *objmodel.Ref {
	t.Helper()
	desc, err := master.engine.ExportObject(head)
	if err != nil {
		t.Fatal(err)
	}
	return client.engine.RefFromDescriptor(desc, spec)
}

func twoSites(t *testing.T, opts ...Option) (master, client *testSite) {
	t.Helper()
	net := transport.NewMemNetwork(netsim.Loopback)
	master = newTestSite(t, net, "s2", 2, opts...) // the paper's S2 holds the graph
	client = newTestSite(t, net, "s1", 1, opts...)
	return master, client
}

// TestPaperWalkthrough reproduces the scenario of Figures 1 and 2: S2 holds
// A→B→C; S1 obtains A, faults in B on first use, then C; afterwards all
// invocations are local and the proxies are gone.
func TestPaperWalkthrough(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 3, 8) // A, B, C

	refA := exportHead(t, master, client, docs[0], GetSpec{Mode: Incremental, Batch: 1})

	// Situation (a): nothing replicated yet.
	if client.heap.Len() != 0 {
		t.Fatalf("client heap should be empty, has %d", client.heap.Len())
	}

	// Demand A (situation (b)): A' plus BProxyOut.
	res, err := refA.Invoke("Title")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "doc-0" {
		t.Fatalf("A title: %#v", res[0])
	}
	if client.heap.Len() != 1 {
		t.Fatalf("after A: heap %d, want 1", client.heap.Len())
	}
	a, err := objmodel.Deref[*doc](refA)
	if err != nil {
		t.Fatal(err)
	}
	if a.Next == nil || a.Next.IsResolved() {
		t.Fatal("A'.Next must be a proxy-out (unresolved)")
	}
	gcStats := client.engine.GC().Snapshot()
	if gcStats.ProxyOutsCreated != 2 { // head proxy + BProxyOut
		t.Fatalf("proxy-outs created: %d, want 2", gcStats.ProxyOutsCreated)
	}
	if gcStats.LiveProxyOuts() != 1 { // head proxy reclaimed, B's alive
		t.Fatalf("live proxy-outs: %d, want 1", gcStats.LiveProxyOuts())
	}

	// Fault B (situation (c)); C stays proxied.
	res, err = a.Next.Invoke("Title")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "doc-1" {
		t.Fatalf("B title: %#v", res[0])
	}
	if !a.Next.IsResolved() {
		t.Fatal("updateMember should have spliced B' in")
	}
	b, err := objmodel.Deref[*doc](a.Next)
	if err != nil {
		t.Fatal(err)
	}
	if b.Next == nil || b.Next.IsResolved() {
		t.Fatal("B'.Next must be proxied")
	}

	// Fault C.
	if _, err := b.Next.Invoke("Title"); err != nil {
		t.Fatal(err)
	}
	c, err := objmodel.Deref[*doc](b.Next)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "doc-2" || c.Next != nil {
		t.Fatalf("C': %+v", c)
	}

	// All proxy-outs are now garbage.
	gcStats = client.engine.GC().Snapshot()
	if gcStats.LiveProxyOuts() != 0 {
		t.Fatalf("live proxy-outs after full walk: %d", gcStats.LiveProxyOuts())
	}
	// Master exported one proxy-in per object.
	if masterGC := master.engine.GC().Snapshot(); masterGC.ProxyInsExported != 3 {
		t.Fatalf("master proxy-ins: %d, want 3", masterGC.ProxyInsExported)
	}

	// Post-resolution invocations hit the replica directly: no new RMI.
	calls := client.rt.Stats().CallsSent
	for i := 0; i < 5; i++ {
		if _, err := a.Next.Invoke("Title"); err != nil {
			t.Fatal(err)
		}
	}
	if after := client.rt.Stats().CallsSent; after != calls {
		t.Fatalf("post-resolution invocations issued %d RMIs", after-calls)
	}
}

func TestTransitiveClosureReplication(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 10, 4)
	refA := exportHead(t, master, client, docs[0], GetSpec{Mode: Transitive})

	if _, err := refA.Resolve(); err != nil {
		t.Fatal(err)
	}
	// One demand shipped everything.
	if client.heap.Len() != 10 {
		t.Fatalf("heap: %d, want 10", client.heap.Len())
	}
	if calls := client.rt.Stats().CallsSent; calls != 1 {
		t.Fatalf("RMI calls: %d, want 1", calls)
	}
	// Walk the whole replica chain locally.
	cur, err := objmodel.Deref[*doc](refA)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; cur.Next != nil; i++ {
		if !cur.Next.IsResolved() {
			t.Fatalf("ref %d unresolved after transitive get", i)
		}
		cur, err = objmodel.Deref[*doc](cur.Next)
		if err != nil {
			t.Fatal(err)
		}
	}
	if cur.Name != "doc-9" {
		t.Fatalf("tail: %s", cur.Name)
	}
}

func TestBatchReplication(t *testing.T) {
	const n, batch = 20, 5
	master, client := twoSites(t)
	docs := buildChain(t, master, n, 4)
	refA := exportHead(t, master, client, docs[0], GetSpec{Mode: Incremental, Batch: batch})

	// Walk the list; every batch-th step faults.
	cur := refA
	for i := 0; i < n; i++ {
		res, err := cur.Invoke("Title")
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if res[0] != fmt.Sprintf("doc-%d", i) {
			t.Fatalf("step %d: %#v", i, res[0])
		}
		d, err := objmodel.Deref[*doc](cur)
		if err != nil {
			t.Fatal(err)
		}
		cur = d.Next
	}
	if calls := client.rt.Stats().CallsSent; calls != n/batch {
		t.Fatalf("RMI calls: %d, want %d", calls, n/batch)
	}
	// Non-clustered: every object got its own proxy-in at the master.
	if got := master.engine.GC().Snapshot().ProxyInsExported; got != n {
		t.Fatalf("proxy-ins: %d, want %d", got, n)
	}
}

func TestClusterReplication(t *testing.T) {
	const n, batch = 20, 5
	master, client := twoSites(t)
	docs := buildChain(t, master, n, 4)
	refA := exportHead(t, master, client, docs[0],
		GetSpec{Mode: Incremental, Batch: batch, Clustered: true})

	cur := refA
	for i := 0; i < n; i++ {
		if _, err := cur.Invoke("Title"); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		d, err := objmodel.Deref[*doc](cur)
		if err != nil {
			t.Fatal(err)
		}
		cur = d.Next
	}
	if calls := client.rt.Stats().CallsSent; calls != n/batch {
		t.Fatalf("RMI calls: %d, want %d", calls, n/batch)
	}
	// Clustered: one proxy-in per cluster, not per object (§4.3).
	if got := master.engine.GC().Snapshot().ProxyInsExported; got != n/batch {
		t.Fatalf("proxy-ins: %d, want %d", got, n/batch)
	}
	// Members are marked and cannot be put individually.
	d5, ok := client.heap.Get(mustOIDOf(t, master, docs[5]))
	if !ok {
		t.Fatal("doc-5 replica missing")
	}
	if !d5.ClusterMember() {
		t.Fatal("doc-5 should be a cluster member")
	}
	if err := client.engine.Put(d5.Obj); !errors.Is(err, ErrClusterMember) {
		t.Fatalf("individual put of cluster member: %v", err)
	}
}

func mustOIDOf(t *testing.T, s *testSite, obj any) objmodel.OID {
	t.Helper()
	e, ok := s.heap.EntryOf(obj)
	if !ok {
		t.Fatalf("object %T not in heap", obj)
	}
	return e.OID
}

func TestPutUpdatesMaster(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 2, 4)
	refA := exportHead(t, master, client, docs[0], DefaultSpec)

	a, err := objmodel.Deref[*doc](refA)
	if err != nil {
		t.Fatal(err)
	}
	a.Name = "edited at s1"
	if err := client.engine.Put(a); err != nil {
		t.Fatal(err)
	}
	if docs[0].Name != "edited at s1" {
		t.Fatalf("master after put: %q", docs[0].Name)
	}
	// Master's Next ref must still point at doc-1.
	if docs[0].Next == nil || !docs[0].Next.IsResolved() {
		t.Fatal("master ref lost by put")
	}
	tgt, err := objmodel.Deref[*doc](docs[0].Next)
	if err != nil || tgt != docs[1] {
		t.Fatalf("master ref target: %v %v", tgt, err)
	}
	// Version advanced on both sides.
	me, _ := master.heap.EntryOf(docs[0])
	ce, _ := client.heap.Get(me.OID)
	if me.Version() != 2 || ce.Version() != 2 {
		t.Fatalf("versions: master %d client %d", me.Version(), ce.Version())
	}
}

func TestRefreshPullsMasterState(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 2, 4)
	refA := exportHead(t, master, client, docs[0], DefaultSpec)
	a, err := objmodel.Deref[*doc](refA)
	if err != nil {
		t.Fatal(err)
	}

	docs[0].Name = "edited at master"
	if err := master.engine.MarkUpdated(docs[0]); err != nil {
		t.Fatal(err)
	}
	if a.Name == "edited at master" {
		t.Fatal("replica must not see master edits before refresh")
	}
	if err := client.engine.Refresh(a); err != nil {
		t.Fatal(err)
	}
	if a.Name != "edited at master" {
		t.Fatalf("after refresh: %q", a.Name)
	}
	ce, _ := client.heap.EntryOf(a)
	if ce.Version() != 2 {
		t.Fatalf("replica version: %d", ce.Version())
	}
}

func TestPutClusterShipsWholeCluster(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 4, 4)
	refA := exportHead(t, master, client, docs[0],
		GetSpec{Mode: Incremental, Batch: 4, Clustered: true})
	a, err := objmodel.Deref[*doc](refA)
	if err != nil {
		t.Fatal(err)
	}
	// Edit two members, then put the cluster.
	b, err := objmodel.Deref[*doc](a.Next)
	if err != nil {
		t.Fatal(err)
	}
	a.Name = "a2"
	b.Name = "b2"
	if err := client.engine.PutCluster(a); err != nil {
		t.Fatal(err)
	}
	if docs[0].Name != "a2" || docs[1].Name != "b2" {
		t.Fatalf("masters after cluster put: %q %q", docs[0].Name, docs[1].Name)
	}
}

func TestDedupeSharedTarget(t *testing.T) {
	// Two objects both reference the same target; replicating through both
	// paths must yield one replica (identity preserved).
	master, client := twoSites(t)
	shared := &doc{Name: "shared"}
	left := &doc{Name: "left"}
	right := &doc{Name: "right"}
	for _, o := range []*doc{shared, left, right} {
		if _, err := master.engine.RegisterMaster(o); err != nil {
			t.Fatal(err)
		}
	}
	var err error
	if left.Next, err = master.engine.NewRef(shared); err != nil {
		t.Fatal(err)
	}
	if right.Next, err = master.engine.NewRef(shared); err != nil {
		t.Fatal(err)
	}

	refL := exportHead(t, master, client, left, DefaultSpec)
	refR := exportHead(t, master, client, right, DefaultSpec)

	l, err := objmodel.Deref[*doc](refL)
	if err != nil {
		t.Fatal(err)
	}
	r, err := objmodel.Deref[*doc](refR)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := objmodel.Deref[*doc](l.Next)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := objmodel.Deref[*doc](r.Next)
	if err != nil {
		t.Fatal(err)
	}
	if ls != rs {
		t.Fatal("shared target replicated twice: identity lost")
	}
	// The second fault was served from the heap, not the network.
	if stats := client.engine.GC().Snapshot(); stats.FaultsServedFromHeap == 0 {
		t.Fatal("expected a heap-served fault")
	}
}

func TestRemoteModeInvokesMaster(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 1, 4)
	refA := exportHead(t, master, client, docs[0], DefaultSpec)
	refA.SetMode(objmodel.ModeRemote)

	res, err := refA.Invoke("Title")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "doc-0" {
		t.Fatalf("title via RMI: %#v", res[0])
	}
	if client.heap.Len() != 0 {
		t.Fatal("ModeRemote must not replicate")
	}
	// Mutations through RMI happen at the master.
	if _, err := refA.Invoke("SetBody", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if string(docs[0].Body) != "abc" {
		t.Fatalf("master body: %q", docs[0].Body)
	}
	// Run-time switch to replication: same ref, now local.
	refA.SetMode(objmodel.ModeLocal)
	res, err = refA.Invoke("Size")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int(3) {
		t.Fatalf("size: %#v", res[0])
	}
	if client.heap.Len() != 1 {
		t.Fatal("ModeLocal should have replicated")
	}
}

func TestRemoteModeAfterReplicationStillHitsMaster(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 1, 0)
	refA := exportHead(t, master, client, docs[0], DefaultSpec)
	if _, err := refA.Resolve(); err != nil {
		t.Fatal(err)
	}
	// Mutate the master behind the replica's back.
	docs[0].Name = "master-only edit"
	refA.SetMode(objmodel.ModeRemote)
	res, err := refA.Invoke("Title")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "master-only edit" {
		t.Fatalf("RMI after replication returned %#v", res[0])
	}
	refA.SetMode(objmodel.ModeLocal)
	res, err = refA.Invoke("Title")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "doc-0" {
		t.Fatalf("LMI should see stale replica: %#v", res[0])
	}
}

func TestExplicitReplicateOverridesSpec(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 8, 4)
	refA := exportHead(t, master, client, docs[0], GetSpec{Mode: Incremental, Batch: 1})
	// Override to transitive: the run-time mode decision of §2.1.
	if _, err := client.engine.Replicate(refA, GetSpec{Mode: Transitive}); err != nil {
		t.Fatal(err)
	}
	if client.heap.Len() != 8 {
		t.Fatalf("heap: %d, want 8", client.heap.Len())
	}
	if calls := client.rt.Stats().CallsSent; calls != 1 {
		t.Fatalf("calls: %d", calls)
	}
}

func TestDisconnectedFaultFailsButLocalWorkContinues(t *testing.T) {
	net := transport.NewMemNetwork(netsim.Loopback)
	master := newTestSite(t, net, "s2", 2)
	client := newTestSite(t, net, "s1", 1)
	docs := buildChain(t, master, 3, 4)
	refA := exportHead(t, master, client, docs[0], GetSpec{Mode: Incremental, Batch: 2})

	a, err := objmodel.Deref[*doc](refA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := objmodel.Deref[*doc](a.Next) // heap-served: same batch
	if err != nil {
		t.Fatal(err)
	}

	net.Disconnect("s1", "s2")

	// Colocated objects keep working — the paper's disconnected-operation
	// headline.
	if _, err := refA.Invoke("Title"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Next.Invoke("Title"); err != nil {
		t.Fatal(err)
	}
	// The frontier fault fails while disconnected...
	if _, err := b.Next.Invoke("Title"); err == nil {
		t.Fatal("fault across a dead link must fail")
	}
	// ...and succeeds after reconnection (the ref retries).
	net.Reconnect("s1", "s2")
	res, err := b.Next.Invoke("Title")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "doc-2" {
		t.Fatalf("after reconnect: %#v", res[0])
	}
}

func TestThirdSiteChain(t *testing.T) {
	// S3 replicates from S1 what S1 replicated from S2: the frontier of a
	// replica payload forwards the upstream provider.
	net := transport.NewMemNetwork(netsim.Loopback)
	s2 := newTestSite(t, net, "s2", 2)
	s1 := newTestSite(t, net, "s1", 1)
	s3 := newTestSite(t, net, "s3", 3)
	docs := buildChain(t, s2, 3, 4)

	// S1 replicates the head only; its replica's Next proxies to S2.
	ref1 := exportHead(t, s2, s1, docs[0], GetSpec{Mode: Incremental, Batch: 1})
	a1, err := objmodel.Deref[*doc](ref1)
	if err != nil {
		t.Fatal(err)
	}

	// S3 now replicates the head from S1's replica.
	desc1, err := s1.engine.ExportObject(a1)
	if err != nil {
		t.Fatal(err)
	}
	ref3 := s3.engine.RefFromDescriptor(desc1, GetSpec{Mode: Incremental, Batch: 1})
	a3, err := objmodel.Deref[*doc](ref3)
	if err != nil {
		t.Fatal(err)
	}
	if a3.Name != "doc-0" {
		t.Fatalf("S3 head: %q", a3.Name)
	}
	// Walking onward from S3 reaches S2's objects through the forwarded
	// frontier.
	res, err := a3.Next.Invoke("Title")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "doc-1" {
		t.Fatalf("S3 next: %#v", res[0])
	}
}

func TestPolicyHooksFire(t *testing.T) {
	rec := &recordingPolicy{}
	master, client := twoSites(t)
	// Only the master's engine needs the policy; rebuild it with one.
	master.engine = NewEngine(master.rt, master.heap, WithPolicy(rec))
	docs := buildChain(t, master, 2, 4)
	refA := exportHead(t, master, client, docs[0], DefaultSpec)
	a, err := objmodel.Deref[*doc](refA)
	if err != nil {
		t.Fatal(err)
	}
	a.Name = "x"
	if err := client.engine.Put(a); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.created != 1 {
		t.Fatalf("ReplicaCreated fired %d times", rec.created)
	}
	if rec.applied != 1 || rec.updated != 1 {
		t.Fatalf("ApplyPut %d, MasterUpdated %d", rec.applied, rec.updated)
	}
	if rec.lastSite != "s1" {
		t.Fatalf("requester: %q", rec.lastSite)
	}
}

type recordingPolicy struct {
	mu       sync.Mutex
	created  int
	applied  int
	updated  int
	lastSite string
	reject   error
}

func (p *recordingPolicy) ApplyPut(oid objmodel.OID, cur, base uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.reject != nil {
		return p.reject
	}
	p.applied++
	return nil
}

func (p *recordingPolicy) ReplicaCreated(oid objmodel.OID, site string, v uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.created++
	p.lastSite = site
}

func (p *recordingPolicy) MasterUpdated(oid objmodel.OID, v uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.updated++
}

func TestPolicyCanRejectPut(t *testing.T) {
	rec := &recordingPolicy{reject: errors.New("stale update")}
	master, client := twoSites(t)
	master.engine = NewEngine(master.rt, master.heap, WithPolicy(rec))
	docs := buildChain(t, master, 1, 4)
	refA := exportHead(t, master, client, docs[0], DefaultSpec)
	a, err := objmodel.Deref[*doc](refA)
	if err != nil {
		t.Fatal(err)
	}
	a.Name = "conflicting"
	err = client.engine.Put(a)
	var re *rmi.RemoteError
	if !errors.As(err, &re) || re.Code != "app" {
		t.Fatalf("rejected put: %v", err)
	}
	if docs[0].Name == "conflicting" {
		t.Fatal("rejected put must not reach the master")
	}
}

func TestPutErrorsOnWrongObjects(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 1, 4)
	if err := master.engine.Put(docs[0]); !errors.Is(err, ErrNotReplica) {
		t.Fatalf("put on master: %v", err)
	}
	if err := client.engine.Put(&doc{}); !errors.Is(err, heap.ErrUnknownObject) {
		t.Fatalf("put on unknown: %v", err)
	}
}

func TestConcurrentWalkersShareReplicas(t *testing.T) {
	const n = 30
	master, client := twoSites(t)
	docs := buildChain(t, master, n, 4)
	refA := exportHead(t, master, client, docs[0], GetSpec{Mode: Incremental, Batch: 3})

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur := refA
			for i := 0; i < n; i++ {
				d, err := objmodel.Deref[*doc](cur)
				if err != nil {
					errs <- fmt.Errorf("step %d: %w", i, err)
					return
				}
				if d.Name != fmt.Sprintf("doc-%d", i) {
					errs <- fmt.Errorf("step %d: got %q", i, d.Name)
					return
				}
				cur = d.Next
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if client.heap.Len() != n {
		t.Fatalf("heap: %d, want %d", client.heap.Len(), n)
	}
}

func TestSpecNormalize(t *testing.T) {
	s := GetSpec{}.normalize()
	if s.Batch != 1 {
		t.Fatalf("default batch: %d", s.Batch)
	}
	s = GetSpec{Mode: Transitive, Batch: 5, Clustered: true}.normalize()
	if s.Batch != 0 || s.Clustered {
		t.Fatalf("transitive normalize: %+v", s)
	}
}

func TestModeString(t *testing.T) {
	if Incremental.String() != "incremental" || Transitive.String() != "transitive" {
		t.Fatal("mode strings")
	}
}

func TestRefreshClusterMemberRefreshesWholeCluster(t *testing.T) {
	master, client := twoSites(t)
	docs := buildChain(t, master, 3, 4)
	refA := exportHead(t, master, client, docs[0],
		GetSpec{Mode: Incremental, Batch: 3, Clustered: true})
	a, err := objmodel.Deref[*doc](refA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := objmodel.Deref[*doc](a.Next)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate two masters behind the replicas' backs.
	docs[0].Name = "a-v2"
	docs[1].Name = "b-v2"
	if err := master.engine.MarkUpdated(docs[0]); err != nil {
		t.Fatal(err)
	}
	if err := master.engine.MarkUpdated(docs[1]); err != nil {
		t.Fatal(err)
	}

	// Refreshing ONE member pulls the whole cluster (it is the unit of
	// replication and update).
	if err := client.engine.Refresh(b); err != nil {
		t.Fatal(err)
	}
	if a.Name != "a-v2" || b.Name != "b-v2" {
		t.Fatalf("cluster refresh: %q %q", a.Name, b.Name)
	}
}

func TestDepthBoundedCluster(t *testing.T) {
	// A star: root with 4 children, each child with 2 grandchildren.
	master, client := twoSites(t)
	root := &doc{Name: "root"}
	if _, err := master.engine.RegisterMaster(root); err != nil {
		t.Fatal(err)
	}
	var docs []*doc
	link := func(parent *doc, name string) *doc {
		child := &doc{Name: name}
		ref, err := master.engine.NewRef(child)
		if err != nil {
			t.Fatal(err)
		}
		// Chain via Next is single-edge; use a helper type? doc has only
		// Next — build a chain of depth 3 instead.
		parent.Next = ref
		docs = append(docs, child)
		return child
	}
	c1 := link(root, "d1")
	c2 := link(c1, "d2")
	link(c2, "d3")

	ref := exportHead(t, master, client, root,
		GetSpec{Mode: Incremental, Batch: 100, Depth: 1, Clustered: true})
	if _, err := ref.Resolve(); err != nil {
		t.Fatal(err)
	}
	// Depth 1 from the root: root + d1 only.
	if client.heap.Len() != 2 {
		t.Fatalf("depth-1 cluster: %d objects", client.heap.Len())
	}
}
