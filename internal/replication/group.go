package replication

import (
	"errors"
	"fmt"
	"time"

	"obiwan/internal/heap"
	"obiwan/internal/objmodel"
	"obiwan/internal/rmi"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// This file is the engine's master-group surface. A site that joins a
// consensus-replicated master group (site.WithMasterGroup) installs a
// MasterGate; the engine then stops mutating master state directly and
// instead routes every master mutation — registration, applied puts,
// version bumps — through the gate, which agrees it through the group's
// replicated log and replays it via the ApplyReplicated* entrypoints on
// every member. Reads (payload assembly, master-directed invokes) are
// admission-checked so only a leader holding a live lease serves them;
// followers answer with the typed NotLeaderError redirect.
//
// The client side is symmetric: payloads and descriptors minted by a
// grouped site carry the group's member addresses, and callFailover turns
// a dead or deposed leader into a transparent retry against the next
// member. Exactly-once across the retry is the replicated applied-put
// dedupe: every member's log replay carries the (base, crc → version)
// guard, so a put that committed under the old leader is answered from
// the guard by the new one instead of applying twice.

// MasterGate is what the site-layer group object implements. CheckServe
// and the Route* methods return *NotLeaderError when this member must
// redirect; Route* methods block until the mutation is agreed and applied
// locally.
type MasterGate interface {
	// CheckServe reports whether this member may serve master reads right
	// now (leader, live lease, log replayed up to its own term).
	CheckServe() error
	// Members lists the group's member site addresses (static, self
	// included) — what clients fail over across.
	Members() []transport.Addr
	// RoutePut agrees an inbound put through the log and returns the
	// apply result.
	RoutePut(sc telemetry.SpanContext, req *PutRequest) (*PutReply, error)
	// RouteRegister agrees the registration of obj as a group-mastered
	// object and returns its heap entry on this member.
	RouteRegister(obj any) (*heap.Entry, error)
	// RouteBump agrees a local master update (MarkUpdated) and returns
	// the new version.
	RouteBump(entry *heap.Entry) (uint64, error)
}

// SetMasterGate installs the master-group gate (nil detaches it).
func (e *Engine) SetMasterGate(g MasterGate) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.gate = g
}

func (e *Engine) masterGate() MasterGate {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.gate
}

// gateServe admission-checks a master read on a gated site. Replica
// entries (onward replication) are never gated.
func (e *Engine) gateServe(entry *heap.Entry) error {
	g := e.masterGate()
	if g == nil || entry.Role != heap.Master {
		return nil
	}
	return g.CheckServe()
}

// recordGroup remembers that oid is mastered by a group reachable at any
// of members — the client-side fail-over route.
func (e *Engine) recordGroup(oid objmodel.OID, members []transport.Addr) {
	if oid == 0 || len(members) == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.groups == nil {
		e.groups = make(map[objmodel.OID][]transport.Addr)
	}
	e.groups[oid] = append([]transport.Addr(nil), members...)
}

// groupFor returns the known member addresses mastering oid (nil when the
// object is single-mastered).
func (e *Engine) groupFor(oid objmodel.OID) []transport.Addr {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.groups[oid]
}

// failoverPause is how long a client waits after every group member
// refused or failed a round, before probing again — roughly an election
// timeout, so a group mid-election gets a chance to converge.
const failoverPause = 50 * time.Millisecond

// callFailover performs a replication call against a possibly-grouped
// provider. On a not-leader redirect it re-aims at the hinted member (or
// probes the membership when no hint is known); when rotate is set it
// also rotates through members on transient failures — safe for Get
// (idempotent) and Put/PutCluster (the replicated dedupe guard makes a
// second arrival return the recorded reply), NOT for Invoke. It returns
// the reply plus the member that answered, so callers can re-pin
// providers to the new leader. Time spent parked in failoverPause —
// waiting out an election — is attributed to the caller's span as
// elect.wait (a nil span drops the attribution, nothing else).
func (e *Engine) callFailover(span *telemetry.Span, oid objmodel.OID, prov rmi.RemoteRef, timeout time.Duration, rotate bool, method string, args ...any) ([]any, rmi.RemoteRef, error) {
	sc := span.Context()
	res, err := e.rt.CallTracedTimeout(sc, prov, timeout, method, args...)
	if err == nil {
		return res, prov, nil
	}
	members := e.groupFor(oid)
	if len(members) == 0 {
		return nil, prov, err
	}
	clock := e.rt.Clock()
	deadline := clock.Now().Add(timeout)
	cur := prov
	tried := map[transport.Addr]bool{cur.Addr: true}
	for {
		hint, redirect := NotLeaderHint(err)
		transient := rotate && (transport.IsTransient(err) || errors.Is(err, rmi.ErrTimeout))
		if !redirect && !transient {
			return nil, cur, err
		}
		var next transport.Addr
		if redirect && hint != "" && hint != cur.Addr {
			next = hint
		} else {
			for _, m := range members {
				if !tried[m] {
					next = m
					break
				}
			}
			if next == "" {
				// Every member refused or failed this round: wait out an
				// election in progress, then probe the membership afresh.
				if !clock.Now().Add(failoverPause).Before(deadline) {
					return nil, cur, err
				}
				clock.Sleep(failoverPause)
				span.Phase(telemetry.PhaseElectWait, failoverPause)
				tried = map[transport.Addr]bool{}
				continue
			}
		}
		if !clock.Now().Before(deadline) {
			return nil, cur, err
		}
		if e.flight != nil {
			e.flight.Record(telemetry.FlightEvent{
				Kind: "repl.failover", OID: uint64(oid),
				TraceID: sc.TraceID, SpanID: sc.SpanID,
				Detail: fmt.Sprintf("%s %s->%s", method, cur.Addr, next),
				Err:    err.Error(),
			})
		}
		cur.Addr = next
		tried[next] = true
		res, err = e.rt.CallTracedTimeout(sc, cur, deadline.Sub(clock.Now()), method, args...)
		if err == nil {
			return res, cur, nil
		}
	}
}

// PreparePut runs leader-side admission for an inbound grouped put,
// BEFORE it is proposed to the log: the exactly-once dedupe fast path
// (done=true with the recorded reply — a retry of an already-agreed put
// needs no new log entry) and the consistency-policy check (an error
// rejects the put without consuming a slot). The gate calls this, then
// proposes the request, then fires NotifyMasterUpdated with the result.
func (e *Engine) PreparePut(req *PutRequest) (reply *PutReply, done bool, err error) {
	entry, ok := e.heap.Get(objmodel.OID(req.OID))
	if !ok {
		return nil, false, fmt.Errorf("%w: %d", heap.ErrUnknownObject, req.OID)
	}
	crc := stateCRC(req.State)
	e.mu.Lock()
	if ap, ok := e.appliedPuts[entry.OID]; ok && ap.base == req.BaseVersion && ap.crc == crc {
		v := ap.version
		e.mu.Unlock()
		e.emit(Event{Kind: EventPutApplied, OID: entry.OID, Version: v})
		return &PutReply{NewVersion: v}, true, nil
	}
	e.mu.Unlock()
	if err := e.getPolicy().ApplyPut(entry.OID, entry.Version(), req.BaseVersion); err != nil {
		return nil, false, err
	}
	return nil, false, nil
}

// NotifyMasterUpdated fires the consistency policy's MasterUpdated hook.
// On a grouped site the hook must fire exactly once per agreed update —
// at the leader, after commit — so the deterministic ApplyReplicated*
// replay never calls it; the gate does, through this.
func (e *Engine) NotifyMasterUpdated(oid objmodel.OID, newVersion uint64) {
	e.getPolicy().MasterUpdated(oid, newVersion)
}

// ApplyReplicatedRegister is the deterministic replay of an agreed master
// registration: install obj at the agreed identity and version, restore
// the agreed state snapshot, and export the proxy-in at the agreed RMI
// object id — the same id on every member, which is what lets a client's
// provider reference survive failover by swapping only the address.
func (e *Engine) ApplyReplicatedRegister(obj any, oid objmodel.OID, typeName string, version uint64, state []byte, frontier []FrontierRef, proxyID uint64) (*heap.Entry, error) {
	if err := e.heap.AddMasterWithOID(obj, oid, typeName, version); err != nil {
		return nil, err
	}
	entry, ok := e.heap.Get(oid)
	if !ok {
		return nil, fmt.Errorf("replication: registered %v vanished", oid)
	}
	if len(state) > 0 {
		fmap := make(map[objmodel.OID]FrontierRef, len(frontier))
		for _, fr := range frontier {
			fmap[objmodel.OID(fr.OID)] = fr
		}
		if err := e.restoreEntry(entry, state, fmap, DefaultSpec); err != nil {
			return nil, err
		}
	}
	if proxyID != 0 {
		if err := e.RestoreProxyIn(oid, proxyID); err != nil {
			return nil, err
		}
	}
	return entry, nil
}

// ApplyReplicatedPut is the deterministic replay of an agreed put: the
// dedupe guard, state restore, and version bump of applyPut, WITHOUT the
// consistency-policy admission (the leader ran it before proposing — see
// PreparePut) and without the MasterUpdated hook (the gate fires it at
// the leader only). Every member's guard table stays identical because it
// is itself a pure function of the agreed log.
func (e *Engine) ApplyReplicatedPut(req *PutRequest) (*PutReply, error) {
	entry, ok := e.heap.Get(objmodel.OID(req.OID))
	if !ok {
		return nil, fmt.Errorf("%w: %d", heap.ErrUnknownObject, req.OID)
	}
	crc := stateCRC(req.State)
	e.mu.Lock()
	if ap, ok := e.appliedPuts[entry.OID]; ok && ap.base == req.BaseVersion && ap.crc == crc {
		v := ap.version
		e.mu.Unlock()
		return &PutReply{NewVersion: v}, nil
	}
	e.mu.Unlock()
	frontier := make(map[objmodel.OID]FrontierRef, len(req.Frontier))
	for _, fr := range req.Frontier {
		frontier[objmodel.OID(fr.OID)] = fr
	}
	if err := e.restoreEntry(entry, req.State, frontier, DefaultSpec); err != nil {
		return nil, err
	}
	v := entry.BumpVersion()
	e.mu.Lock()
	e.appliedPuts[entry.OID] = appliedPut{base: req.BaseVersion, crc: crc, version: v}
	e.mu.Unlock()
	e.emit(Event{Kind: EventPutApplied, OID: entry.OID, Version: v})
	return &PutReply{NewVersion: v}, nil
}

// ApplyReplicatedBump is the deterministic replay of an agreed local
// master update (MarkUpdated on a grouped site): restore the agreed state
// snapshot and bump the version. All members bump in log order, so
// versions never diverge.
func (e *Engine) ApplyReplicatedBump(oid objmodel.OID, state []byte, frontier []FrontierRef) (uint64, error) {
	entry, ok := e.heap.Get(oid)
	if !ok {
		return 0, fmt.Errorf("%w: %v", heap.ErrUnknownObject, oid)
	}
	if len(state) > 0 {
		fmap := make(map[objmodel.OID]FrontierRef, len(frontier))
		for _, fr := range frontier {
			fmap[objmodel.OID(fr.OID)] = fr
		}
		if err := e.restoreEntry(entry, state, fmap, DefaultSpec); err != nil {
			return 0, err
		}
	}
	return entry.BumpVersion(), nil
}

// CaptureForGroup captures entry's current state plus recovery frontier —
// what the gate packs into a register/bump command so followers replay an
// identical object. Exposed for the site-layer group implementation.
func (e *Engine) CaptureForGroup(entry *heap.Entry) (state []byte, frontier []FrontierRef, err error) {
	state, err = e.captureEntry(entry)
	if err != nil {
		return nil, nil, err
	}
	frontier, err = e.BuildRecoveryFrontier(entry.Obj)
	if err != nil {
		return nil, nil, err
	}
	return state, frontier, nil
}
