package replication

import (
	"errors"
	"testing"

	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/transport"
)

// TestDisconnectedOperationsReturnErrUnavailable: once the link to the
// master is down, every remote replication path — demand, put, refresh —
// fails typed with ErrUnavailable (after the retry policy gives up), the
// underlying transport error stays inspectable, and the same operations
// succeed unchanged after reconnection.
func TestDisconnectedOperationsReturnErrUnavailable(t *testing.T) {
	net := transport.NewMemNetwork(netsim.Loopback)
	master := newTestSite(t, net, "s2", 2)
	client := newTestSite(t, net, "s1", 1)
	docs := buildChain(t, master, 3, 8)
	refA := exportHead(t, master, client, docs[0], GetSpec{Mode: Incremental, Batch: 1})

	a, err := objmodel.Deref[*doc](refA) // replicate A while connected
	if err != nil {
		t.Fatal(err)
	}

	net.Disconnect("s1", "s2")

	// Demand: faulting in B must fail typed, not hang or return raw.
	_, err = objmodel.Deref[*doc](a.Next)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("demand while disconnected: want ErrUnavailable, got %v", err)
	}
	if !errors.Is(err, netsim.ErrDisconnected) {
		t.Fatalf("demand error must keep the transport cause, got %v", err)
	}

	// Put: local modifications are kept, shipping them fails typed.
	a.SetBody([]byte("edited offline"))
	if err := client.engine.MarkUpdated(a); err != nil {
		t.Fatal(err)
	}
	if err := client.engine.Put(a); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("put while disconnected: want ErrUnavailable, got %v", err)
	}

	// Refresh fails typed too.
	if err := client.engine.Refresh(a); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("refresh while disconnected: want ErrUnavailable, got %v", err)
	}

	net.Reconnect("s1", "s2")

	// The same operations now go through: the mobile host re-issues them
	// after reconnection, per the paper's scenario.
	b, err := objmodel.Deref[*doc](a.Next)
	if err != nil {
		t.Fatalf("demand after reconnect: %v", err)
	}
	if b.Name != "doc-1" {
		t.Fatalf("demanded %q, want doc-1", b.Name)
	}
	if err := client.engine.Put(a); err != nil {
		t.Fatalf("put after reconnect: %v", err)
	}
	if string(docs[0].Body) != "edited offline" {
		t.Fatalf("master body %q after put", docs[0].Body)
	}
	if err := client.engine.Refresh(a); err != nil {
		t.Fatalf("refresh after reconnect: %v", err)
	}
}

// TestDemandRetriesThroughScriptedOutage: a short scripted outage on the
// demand path is absorbed entirely by the retry policy — the caller sees
// one successful call, no error.
func TestDemandRetriesThroughScriptedOutage(t *testing.T) {
	net := transport.NewMemNetwork(netsim.Loopback)
	master := newTestSite(t, net, "s2", 2)
	client := newTestSite(t, net, "s1", 1)
	docs := buildChain(t, master, 2, 8)
	refA := exportHead(t, master, client, docs[0], GetSpec{Mode: Incremental, Batch: 1})

	// Send 1 is the connection preamble; the demand call (send 2) hits a
	// two-send outage and its retries reconnect the link (rejected sends
	// advance the schedule clock) and get through.
	net.SetFaultSchedule("s1", "s2", netsim.NewFaultSchedule(
		netsim.FaultEvent{AtSend: 2, Action: netsim.ActDisconnect},
		netsim.FaultEvent{AtSend: 4, Action: netsim.ActReconnect},
	))
	a, err := objmodel.Deref[*doc](refA)
	if err != nil {
		t.Fatalf("demand through outage: %v", err)
	}
	if a.Name != "doc-0" {
		t.Fatalf("demanded %q, want doc-0", a.Name)
	}
	if s := client.rt.Stats(); s.Retries == 0 {
		t.Fatal("outage must have been crossed by retries")
	}
}
