package replication

import (
	"fmt"
	"time"

	"obiwan/internal/objmodel"
)

// EventKind identifies a protocol step in the replication trace.
type EventKind uint8

const (
	// EventFaultResolved: an object fault completed at this site.
	EventFaultResolved EventKind = iota + 1
	// EventPayloadAssembled: this site (as master/provider) built a
	// replica payload.
	EventPayloadAssembled
	// EventPayloadMaterialized: this site installed a replica payload.
	EventPayloadMaterialized
	// EventPutApplied: this site (as master) applied an inbound update.
	EventPutApplied
	// EventPutShipped: this site (as replica holder) shipped an update.
	EventPutShipped
)

func (k EventKind) String() string {
	switch k {
	case EventFaultResolved:
		return "fault-resolved"
	case EventPayloadAssembled:
		return "payload-assembled"
	case EventPayloadMaterialized:
		return "payload-materialized"
	case EventPutApplied:
		return "put-applied"
	case EventPutShipped:
		return "put-shipped"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one step in the replication protocol trace. Fields are filled
// per kind; zero values mean "not applicable".
type Event struct {
	Kind EventKind
	// OID is the subject object (fault target, payload root, put target).
	OID objmodel.OID
	// Objects counts the objects in a payload.
	Objects int
	// Frontier counts the frontier descriptors in a payload.
	Frontier int
	// Clustered marks clustered payloads.
	Clustered bool
	// FromHeap marks faults served locally without a remote demand.
	FromHeap bool
	// Elapsed is the wall time of the step, where measured.
	Elapsed time.Duration
	// Requester is the demanding site for assembled payloads.
	Requester string
	// Version is the resulting version for put events.
	Version uint64
}

func (e Event) String() string {
	return fmt.Sprintf("%s oid=%v objects=%d frontier=%d clustered=%v fromHeap=%v v=%d %v",
		e.Kind, e.OID, e.Objects, e.Frontier, e.Clustered, e.FromHeap, e.Version, e.Elapsed.Round(time.Microsecond))
}

// EventObserver receives protocol events. It is called synchronously on
// the protocol path: keep it fast, hand off anything heavy.
type EventObserver func(Event)

// WithEventObserver installs a protocol trace observer on the engine.
func WithEventObserver(fn EventObserver) Option {
	return func(e *Engine) { e.observer = fn }
}

// SetEventObserver installs (or clears, with nil) the observer at run time.
func (e *Engine) SetEventObserver(fn EventObserver) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.observer = fn
}

// emit delivers an event to the observer, if any.
func (e *Engine) emit(ev Event) {
	e.mu.Lock()
	fn := e.observer
	e.mu.Unlock()
	if fn != nil {
		fn(ev)
	}
}
