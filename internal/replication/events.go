package replication

import (
	"fmt"
	"time"

	"obiwan/internal/objmodel"
	"obiwan/internal/telemetry"
)

// EventKind identifies a protocol step in the replication trace.
type EventKind uint8

const (
	// EventFaultResolved: an object fault completed at this site.
	EventFaultResolved EventKind = iota + 1
	// EventPayloadAssembled: this site (as master/provider) built a
	// replica payload.
	EventPayloadAssembled
	// EventPayloadMaterialized: this site installed a replica payload.
	EventPayloadMaterialized
	// EventPutApplied: this site (as master) applied an inbound update.
	EventPutApplied
	// EventPutShipped: this site (as replica holder) shipped an update.
	EventPutShipped
	// EventReplicaRefreshed: this site re-fetched a replica's state from
	// its provider (a remote demand without an object fault).
	EventReplicaRefreshed
)

func (k EventKind) String() string {
	switch k {
	case EventFaultResolved:
		return "fault-resolved"
	case EventPayloadAssembled:
		return "payload-assembled"
	case EventPayloadMaterialized:
		return "payload-materialized"
	case EventPutApplied:
		return "put-applied"
	case EventPutShipped:
		return "put-shipped"
	case EventReplicaRefreshed:
		return "replica-refreshed"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one step in the replication protocol trace. Fields are filled
// per kind; zero values mean "not applicable".
type Event struct {
	Kind EventKind
	// OID is the subject object (fault target, payload root, put target).
	OID objmodel.OID
	// Objects counts the objects in a payload.
	Objects int
	// Bytes totals the serialized object state carried by a payload.
	Bytes int
	// Frontier counts the frontier descriptors in a payload.
	Frontier int
	// Clustered marks clustered payloads.
	Clustered bool
	// FromHeap marks faults served locally without a remote demand.
	FromHeap bool
	// Elapsed is the wall time of the step, where measured.
	Elapsed time.Duration
	// Requester is the demanding site for assembled payloads.
	Requester string
	// Version is the resulting version for put events.
	Version uint64
}

func (e Event) String() string {
	return fmt.Sprintf("%s oid=%v objects=%d bytes=%d frontier=%d clustered=%v fromHeap=%v v=%d %v",
		e.Kind, e.OID, e.Objects, e.Bytes, e.Frontier, e.Clustered, e.FromHeap, e.Version, e.Elapsed.Round(time.Microsecond))
}

// EventObserver receives protocol events. It is called synchronously on
// the protocol path: keep it fast, hand off anything heavy.
type EventObserver func(Event)

// obsEntry is one fan-out registration.
type obsEntry struct {
	id int
	fn EventObserver
}

// WithEventObserver installs a protocol trace observer on the engine. It
// occupies the same replaceable slot as SetEventObserver.
func WithEventObserver(fn EventObserver) Option {
	return func(e *Engine) { e.observer = fn }
}

// SetEventObserver installs (or clears, with nil) the replaceable observer
// slot at run time. Observers added with AddEventObserver are unaffected.
func (e *Engine) SetEventObserver(fn EventObserver) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.observer = fn
}

// AddEventObserver registers fn alongside any existing observers — the
// fan-out path that lets the telemetry exporter, the bench harness, and a
// test all watch the same engine. The returned function removes fn;
// calling it more than once is harmless. Observers run synchronously in
// registration order, after the SetEventObserver slot.
func (e *Engine) AddEventObserver(fn EventObserver) (remove func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.observerSeq++
	id := e.observerSeq
	e.observers = append(e.observers, obsEntry{id: id, fn: fn})
	return func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		for i, o := range e.observers {
			if o.id == id {
				e.observers = append(e.observers[:i], e.observers[i+1:]...)
				return
			}
		}
	}
}

// emit delivers an event to every observer and folds it into the metrics
// registry. Observer calls happen outside the engine lock.
func (e *Engine) emit(ev Event) {
	e.recordEventMetrics(ev)
	e.mu.Lock()
	fns := make([]EventObserver, 0, len(e.observers)+1)
	if e.observer != nil {
		fns = append(fns, e.observer)
	}
	for _, o := range e.observers {
		fns = append(fns, o.fn)
	}
	e.mu.Unlock()
	for _, fn := range fns {
		fn(ev)
	}
}

// recordEventMetrics maps protocol events onto the repl.* instruments,
// the per-object profiler, and the flight recorder. Every instrument,
// the profiler, and the recorder are nil — and every call below a no-op
// — when telemetry is disabled.
func (e *Engine) recordEventMetrics(ev Event) {
	switch ev.Kind {
	case EventFaultResolved:
		e.met.faults.Inc()
		if ev.FromHeap {
			e.met.faultsHeap.Inc()
		} else {
			e.met.faultLatency.ObserveDuration(ev.Elapsed)
		}
		e.prof.RecordFault(uint64(ev.OID), ev.FromHeap, ev.Clustered, ev.Objects, ev.Bytes, ev.Elapsed)
	case EventPayloadAssembled:
		e.met.assembled.Inc()
		e.met.payloadObjs.Observe(int64(ev.Objects))
		if ev.Clustered {
			e.met.clustered.Inc()
		} else {
			e.met.batch.Inc()
		}
		e.prof.RecordServe(uint64(ev.OID), ev.Objects, ev.Bytes)
	case EventPayloadMaterialized:
		e.met.materialized.Inc()
	case EventReplicaRefreshed:
		e.met.refreshes.Inc()
		e.prof.RecordRefresh(uint64(ev.OID), ev.Clustered, ev.Objects, ev.Bytes, ev.Elapsed)
	case EventPutShipped:
		e.met.putsShipped.Inc()
		e.prof.RecordPutShipped(uint64(ev.OID))
	case EventPutApplied:
		e.met.putsApplied.Inc()
		e.prof.RecordPutApplied(uint64(ev.OID))
	}
	if e.flight != nil {
		e.flight.Record(telemetry.FlightEvent{
			Kind: "repl." + ev.Kind.String(), OID: uint64(ev.OID),
			Detail: fmt.Sprintf("objects=%d bytes=%d", ev.Objects, ev.Bytes),
		})
	}
}
