package replication

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"obiwan/internal/codec"
	"obiwan/internal/heap"
	"obiwan/internal/objmodel"
	"obiwan/internal/platgc"
	"obiwan/internal/rmi"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// Policy is the consistency hook surface the engine calls into. The paper
// leaves replica consistency to the application, providing only the hooks:
// "the application programmer is not forced to deal with consistency; he
// may simply use a library of specific consistency protocols" (§2.1).
// Package consistency provides such a library.
type Policy interface {
	// ApplyPut decides whether an update based on baseVersion may be
	// applied to a master currently at curVersion. Returning an error
	// rejects the update and surfaces it at the putting site.
	ApplyPut(oid objmodel.OID, curVersion, baseVersion uint64) error
	// ReplicaCreated runs at the master when a site fetches a replica.
	ReplicaCreated(oid objmodel.OID, site string, version uint64)
	// MasterUpdated runs at the master after an update is applied.
	MasterUpdated(oid objmodel.OID, newVersion uint64)
}

// acceptAll is the paper's default: the programmer owns consistency.
type acceptAll struct{}

func (acceptAll) ApplyPut(objmodel.OID, uint64, uint64) error { return nil }
func (acceptAll) ReplicaCreated(objmodel.OID, string, uint64) {}
func (acceptAll) MasterUpdated(objmodel.OID, uint64)          {}

// Crossover advises ModeAuto references: given the peer site serving the
// object and the number of invocations so far through a reference, should
// the target be replicated now? The QoS package provides an implementation
// based on the figure-4 cost model.
type Crossover func(peer transport.Addr, oid objmodel.OID, calls uint64) bool

// Engine errors.
var (
	// ErrClusterMember is returned by Put for replicas that arrived inside
	// a cluster: "each object can not be individually updated" (§4.3).
	// Use PutCluster instead.
	ErrClusterMember = errors.New("replication: object is a cluster member; use PutCluster")
	// ErrNotReplica is returned by Put/Refresh on masters.
	ErrNotReplica = errors.New("replication: object is not a replica")
	// ErrNoProvider is returned when a replica has no proxy-in to talk to.
	ErrNoProvider = errors.New("replication: replica has no provider")
)

// Option configures an Engine.
type Option func(*Engine)

// WithPolicy installs a consistency policy (default: accept everything).
func WithPolicy(p Policy) Option {
	return func(e *Engine) {
		if p != nil {
			e.policy = p
		}
	}
}

// WithCrossover installs the ModeAuto advisor.
func WithCrossover(c Crossover) Option {
	return func(e *Engine) { e.crossover = c }
}

// WithTelemetry attaches a telemetry hub: replication protocol steps
// (fault, assemble, materialize, put) become spans and the repl.* metrics
// are recorded from protocol events. Pass the same hub given to the RMI
// runtime so cross-site demand chains share one trace. Nil (the default)
// disables both at no cost.
func WithTelemetry(h *telemetry.Hub) Option {
	return func(e *Engine) { e.tel = h }
}

// BulkTimeout is the per-call deadline for replication data transfers
// (Get/Put/PutCluster). Bulk payloads — a transitive closure of a large
// graph on a thin link — legitimately take far longer than interactive
// RMI calls, so they do not use the runtime's default call timeout.
const BulkTimeout = 5 * time.Minute

// Engine is a site's replication runtime: master-side payload assembly and
// proxy-in exports, client-side materialization and proxy-out faults.
type Engine struct {
	rt        *rmi.Runtime
	heap      *heap.Heap
	reg       *codec.Registry
	policy    Policy
	crossover Crossover
	observer  EventObserver
	gc        platgc.Accountant
	tel       *telemetry.Hub
	prof      *telemetry.Profiler       // nil no-op when tel is nil
	flight    *telemetry.FlightRecorder // nil no-op when tel is nil
	invokeObs objmodel.InvokeObserver   // nil when profiling is off

	// Protocol instruments, resolved once; all nil no-ops when tel is nil.
	met struct {
		faults       *telemetry.Counter
		faultsHeap   *telemetry.Counter
		faultLatency *telemetry.Histogram
		assembled    *telemetry.Counter
		materialized *telemetry.Counter
		clustered    *telemetry.Counter
		batch        *telemetry.Counter
		payloadObjs  *telemetry.Histogram
		putsShipped  *telemetry.Counter
		putsApplied  *telemetry.Counter
		refreshes    *telemetry.Counter
	}

	mu          sync.Mutex
	observers   []obsEntry // fan-out observers, in registration order
	observerSeq int
	journal     Journal                           // durability hooks (nil: in-memory site)
	gate        MasterGate                        // master-group routing (nil: single-master site)
	appliedPuts map[objmodel.OID]appliedPut       // exactly-once guard per master
	proxyIns    map[objmodel.OID]rmi.RemoteRef    // exported proxy-in per object
	clusters    map[objmodel.OID][]objmodel.OID   // cluster root → member OIDs (client side)
	inCluster   map[objmodel.OID]objmodel.OID     // member → cluster root (client side)
	groups      map[objmodel.OID][]transport.Addr // OID → mastering group members (client side)
}

// NewEngine builds the replication engine for one site.
func NewEngine(rt *rmi.Runtime, h *heap.Heap, opts ...Option) *Engine {
	e := &Engine{
		rt:          rt,
		heap:        h,
		reg:         rt.Registry(),
		policy:      acceptAll{},
		appliedPuts: make(map[objmodel.OID]appliedPut),
		proxyIns:    make(map[objmodel.OID]rmi.RemoteRef),
		clusters:    make(map[objmodel.OID][]objmodel.OID),
		inCluster:   make(map[objmodel.OID]objmodel.OID),
	}
	for _, opt := range opts {
		opt(e)
	}
	if m := e.tel.Metrics(); m != nil {
		e.met.faults = m.Counter("repl.faults")
		e.met.faultsHeap = m.Counter("repl.faults.from_heap")
		e.met.faultLatency = m.Histogram("repl.fault.latency_ns")
		e.met.assembled = m.Counter("repl.payloads.assembled")
		e.met.materialized = m.Counter("repl.payloads.materialized")
		e.met.clustered = m.Counter("repl.payloads.clustered")
		e.met.batch = m.Counter("repl.payloads.batch")
		e.met.payloadObjs = m.Histogram("repl.payload.objects")
		e.met.putsShipped = m.Counter("repl.puts.shipped")
		e.met.putsApplied = m.Counter("repl.puts.applied")
		e.met.refreshes = m.Counter("repl.refreshes")
	}
	e.prof = e.tel.Profiler()
	e.flight = e.tel.Flight()
	if e.prof != nil {
		prof := e.prof
		e.invokeObs = func(oid objmodel.OID, remote bool) {
			prof.RecordInvoke(uint64(oid), remote)
		}
	}
	return e
}

// observeRef installs the profiler's LMI/RMI invoke observer on a ref the
// engine created or bound. No-op when profiling is off.
func (e *Engine) observeRef(r *objmodel.Ref) {
	if e.invokeObs != nil {
		r.SetInvokeObserver(e.invokeObs)
	}
}

// failUnavailable classifies an RMI failure on op for oid: transient and
// timed-out errors wrap into ErrUnavailable, and — because exhausting the
// retry policy is exactly the moment an operator wants context — the
// flight recorder logs the failing call (with its causal span id) and
// dumps the ring automatically.
func (e *Engine) failUnavailable(op string, oid objmodel.OID, sc telemetry.SpanContext, err error) error {
	werr := wrapUnavailable(err)
	if e.flight != nil && errors.Is(werr, ErrUnavailable) {
		e.flight.Record(telemetry.FlightEvent{
			Kind: "repl.unavailable", OID: uint64(oid),
			TraceID: sc.TraceID, SpanID: sc.SpanID,
			Detail: op, Err: err.Error(),
		})
		e.flight.Dump("unavailable: " + op)
	}
	return werr
}

// payloadBytes totals the serialized state carried by a payload.
func payloadBytes(p *Payload) int {
	n := 0
	for i := range p.Objects {
		n += len(p.Objects[i].State)
	}
	return n
}

// Telemetry returns the engine's hub (nil when telemetry is disabled).
func (e *Engine) Telemetry() *telemetry.Hub { return e.tel }

// startSpan begins a protocol span under parent (or roots a new trace when
// parent is invalid). Nil-safe when telemetry is off.
func (e *Engine) startSpan(parent telemetry.SpanContext, name string) *telemetry.Span {
	return e.tel.StartSpan(parent, name)
}

// Heap returns the engine's object store.
func (e *Engine) Heap() *heap.Heap { return e.heap }

// Runtime returns the engine's RMI runtime.
func (e *Engine) Runtime() *rmi.Runtime { return e.rt }

// GC returns the platform-object ledger.
func (e *Engine) GC() *platgc.Accountant { return &e.gc }

// SetCrossover installs the ModeAuto advisor at run time.
func (e *Engine) SetCrossover(c Crossover) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.crossover = c
}

// SetPolicy installs a consistency policy at run time (nil restores the
// accept-all default).
func (e *Engine) SetPolicy(p Policy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p == nil {
		p = acceptAll{}
	}
	e.policy = p
}

func (e *Engine) getCrossover() Crossover {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crossover
}

// RegisterMaster adds obj to this site's heap as a master object. On a
// grouped site the registration is agreed through the group log first, so
// every member installs the object at the same identity.
func (e *Engine) RegisterMaster(obj any) (*heap.Entry, error) {
	if g := e.masterGate(); g != nil {
		return g.RouteRegister(obj)
	}
	entry, err := e.heap.AddMaster(obj)
	if err != nil {
		return nil, err
	}
	if err := e.journalMaster(entry); err != nil {
		return nil, err
	}
	return entry, nil
}

// NewRef returns a Ref bound to target, registering target as a master if
// it is not yet in the heap. This is how applications build object graphs:
//
//	a.Next = engine.NewRef(b)
func (e *Engine) NewRef(target any) (*objmodel.Ref, error) {
	entry, ok := e.heap.EntryOf(target)
	if !ok {
		if g := e.masterGate(); g != nil {
			var err error
			entry, err = g.RouteRegister(target)
			if err != nil {
				return nil, err
			}
		} else {
			var err error
			entry, err = e.heap.AddMaster(target)
			if err != nil {
				return nil, err
			}
			if err := e.journalMaster(entry); err != nil {
				return nil, err
			}
		}
	}
	r := objmodel.NewLocalRef(target, entry.OID)
	if entry.Role == heap.Replica {
		if prov := entry.Provider(); !prov.IsZero() {
			r.SetRemote(&remoteInvoker{eng: e, provider: prov, oid: entry.OID})
		}
	}
	e.observeRef(r)
	return r, nil
}

// ExportObject exports a proxy-in for obj (registering it as a master if
// needed) and returns the reference — what a site binds in the name server
// so other sites can reach the graph's root. The returned Descriptor also
// carries the OID and type, which the remote side needs to build its
// proxy-out.
func (e *Engine) ExportObject(obj any) (Descriptor, error) {
	gate := e.masterGate()
	entry, ok := e.heap.EntryOf(obj)
	if !ok {
		var err error
		if gate != nil {
			entry, err = gate.RouteRegister(obj)
		} else {
			entry, err = e.heap.AddMaster(obj)
		}
		if err != nil {
			return Descriptor{}, err
		}
	}
	// Journal on every export, not just fresh registration: exporting is
	// a publish point, and reference wiring done since Register (NewRef
	// mutates the parent without a version bump) must be durable before
	// the object becomes reachable.
	if entry.Role == heap.Master {
		if err := e.journalMaster(entry); err != nil {
			return Descriptor{}, err
		}
	}
	ref, err := e.exportProxyIn(entry)
	if err != nil {
		return Descriptor{}, err
	}
	d := Descriptor{Provider: ref, OID: uint64(entry.OID), TypeName: entry.TypeName}
	if gate != nil && entry.Role == heap.Master {
		d.Group = gate.Members()
	}
	return d, nil
}

// Descriptor identifies a remotely reachable object: the proxy-in to demand
// it from plus its identity. This is what name servers store. Group, when
// non-empty, lists the member addresses of the master group serving the
// object — every member exports the proxy-in at the same object id, so a
// client fails over by swapping only Provider.Addr.
type Descriptor struct {
	Provider rmi.RemoteRef
	OID      uint64
	TypeName string
	Group    []transport.Addr
}

func init() {
	codec.MustRegister("obiwan.repl.Descriptor", Descriptor{})
}

// RefFromDescriptor builds an unresolved Ref from a descriptor obtained out
// of band (typically a name server). Invoking it raises an object fault;
// spec controls how much each fault replicates.
func (e *Engine) RefFromDescriptor(d Descriptor, spec GetSpec) *objmodel.Ref {
	e.recordGroup(objmodel.OID(d.OID), d.Group)
	pout := e.newProxyOut(objmodel.OID(d.OID), d.Provider, spec.normalize())
	r := objmodel.NewFaultingRef(objmodel.OID(d.OID), pout, pout)
	e.observeRef(r)
	return r
}

// exportProxyIn exports (or reuses) the proxy-in serving entry's object.
func (e *Engine) exportProxyIn(entry *heap.Entry) (rmi.RemoteRef, error) {
	e.mu.Lock()
	if ref, ok := e.proxyIns[entry.OID]; ok {
		e.mu.Unlock()
		e.gc.ProxyInReused()
		return ref, nil
	}
	e.mu.Unlock()

	pin := &ProxyIn{eng: e, entry: entry}
	ref, err := e.rt.Export(pin, "obiwan.IProvideRemote")
	if err != nil {
		return rmi.RemoteRef{}, fmt.Errorf("replication: export proxy-in for %v: %w", entry.OID, err)
	}

	e.mu.Lock()
	if existing, ok := e.proxyIns[entry.OID]; ok {
		// Lost a race; keep the winner and withdraw ours.
		e.mu.Unlock()
		e.rt.Unexport(ref.ID)
		e.gc.ProxyInReused()
		return existing, nil
	}
	e.proxyIns[entry.OID] = ref
	e.gc.ProxyInExported()
	e.mu.Unlock()

	// Journal outside e.mu (see journal.go lock-ordering contract). A
	// racing duplicate record is harmless: replay is last-wins and both
	// name the same id.
	if err := e.journalProxyIn(entry.OID, ref.ID); err != nil {
		return rmi.RemoteRef{}, err
	}
	return ref, nil
}

// captureEntry serializes an entry's state under its state lock.
func (e *Engine) captureEntry(entry *heap.Entry) ([]byte, error) {
	entry.LockState()
	defer entry.UnlockState()
	return objmodel.CaptureState(e.reg, entry.Obj)
}

// restoreEntry restores an entry's state and rebinds its references under
// its state lock.
func (e *Engine) restoreEntry(entry *heap.Entry, state []byte, frontier map[objmodel.OID]FrontierRef, spec GetSpec) error {
	entry.LockState()
	defer entry.UnlockState()
	if err := objmodel.RestoreState(e.reg, entry.Obj, state); err != nil {
		return err
	}
	return e.bindRefs(entry.Obj, frontier, spec)
}

// assemble builds the payload for a demand on root with spec. It runs at
// the master (or any site holding the object — replicas can serve onward
// replication the same way). sc parents the "assemble" span: the serve
// span of the inbound Get when the demand was traced, invalid otherwise.
func (e *Engine) assemble(sc telemetry.SpanContext, root *heap.Entry, spec GetSpec, requester string) (payload *Payload, err error) {
	span := e.startSpan(sc, "assemble")
	span.Annotate("oid", fmt.Sprint(root.OID))
	defer func() {
		if payload != nil {
			span.Annotate("objects", fmt.Sprint(len(payload.Objects)))
		}
		span.SetErr(err)
		span.End()
	}()
	if span != nil {
		clk := e.rt.Clock()
		start := clk.Now()
		defer func() { span.Phase(telemetry.PhaseAssemble, clk.Now().Sub(start)) }() // runs before the End defer above
	}
	spec = spec.normalize()
	limit := heap.TraverseLimit{MaxDepth: spec.Depth}
	if spec.Mode == Incremental {
		limit.MaxObjects = spec.Batch
	}
	entries, err := e.heap.Traverse(root.Obj, limit)
	if err != nil {
		return nil, err
	}
	included := make(map[objmodel.OID]bool, len(entries))
	for _, en := range entries {
		included[en.OID] = true
	}

	p := &Payload{
		RootOID:   uint64(root.OID),
		Objects:   make([]ObjectRecord, 0, len(entries)),
		Clustered: spec.Clustered,
		Spec:      spec,
	}
	if g := e.masterGate(); g != nil && root.Role == heap.Master {
		p.Group = g.Members()
	}
	if spec.Clustered {
		ref, err := e.exportProxyIn(root)
		if err != nil {
			return nil, err
		}
		p.ClusterProvider = ref
	}

	frontierSeen := make(map[objmodel.OID]bool)
	for _, en := range entries {
		state, err := e.captureEntry(en)
		if err != nil {
			return nil, err
		}
		rec := ObjectRecord{
			OID:      uint64(en.OID),
			TypeName: en.TypeName,
			Version:  en.Version(),
			State:    state,
		}
		if !spec.Clustered {
			// Figure-5 regime: every shipped object gets its own proxy
			// pair so it stays individually updatable.
			prov, err := e.exportProxyIn(en)
			if err != nil {
				return nil, err
			}
			rec.Provider = prov
		}
		p.Objects = append(p.Objects, rec)

		// Frontier: references leaving the shipped set. The ref list is
		// read under the state lock; descriptors are built after.
		en.LockState()
		refs := objmodel.RefsOf(en.Obj)
		en.UnlockState()
		for _, ref := range refs {
			toid := ref.OID()
			if toid == 0 || included[toid] || frontierSeen[toid] {
				continue
			}
			fr, err := e.frontierFor(ref)
			if err != nil {
				return nil, err
			}
			frontierSeen[toid] = true
			p.Frontier = append(p.Frontier, fr)
		}
		e.getPolicy().ReplicaCreated(en.OID, requester, rec.Version)
	}
	e.emit(Event{
		Kind: EventPayloadAssembled, OID: root.OID, Objects: len(p.Objects),
		Bytes: payloadBytes(p), Frontier: len(p.Frontier), Clustered: p.Clustered,
		Requester: requester,
	})
	return p, nil
}

// frontierFor builds the frontier descriptor for one outgoing reference.
func (e *Engine) frontierFor(ref *objmodel.Ref) (FrontierRef, error) {
	toid := ref.OID()
	if ref.IsResolved() {
		target, err := ref.Resolve()
		if err != nil {
			return FrontierRef{}, err
		}
		te, ok := e.heap.EntryOf(target)
		if !ok {
			return FrontierRef{}, fmt.Errorf("replication: ref target %v not in heap", toid)
		}
		// A local master (or individually-provided replica) can be demanded
		// from this site directly.
		if te.Role == heap.Master || !te.Provider().IsZero() {
			if te.Role == heap.Master {
				prov, err := e.exportProxyIn(te)
				if err != nil {
					return FrontierRef{}, err
				}
				return FrontierRef{OID: uint64(toid), Provider: prov, TypeName: te.TypeName}, nil
			}
			return FrontierRef{OID: uint64(toid), Provider: te.Provider(), TypeName: te.TypeName}, nil
		}
		return FrontierRef{}, fmt.Errorf("replication: no route to %v", toid)
	}
	// The reference is itself proxied here: forward the upstream provider
	// (third-site chains).
	if pout, ok := ref.Faulter().(*ProxyOut); ok {
		return FrontierRef{OID: uint64(toid), Provider: pout.provider}, nil
	}
	return FrontierRef{}, fmt.Errorf("replication: unresolved ref %v has no proxy-out", toid)
}

// materialize installs a payload into the local heap: replicas are created
// or refreshed, references bound, frontier proxy-outs created. It returns
// the root object. sc parents the "materialize" span — on the demand path
// it is the fault span, so the trace reads fault → rmi:Get → serve:Get →
// assemble on the provider, then materialize back here.
func (e *Engine) materialize(sc telemetry.SpanContext, p *Payload) (root any, err error) {
	span := e.startSpan(sc, "materialize")
	span.Annotate("oid", fmt.Sprint(objmodel.OID(p.RootOID)))
	span.Annotate("objects", fmt.Sprint(len(p.Objects)))
	defer func() {
		span.SetErr(err)
		span.End()
	}()
	frontier := make(map[objmodel.OID]FrontierRef, len(p.Frontier))
	for _, fr := range p.Frontier {
		frontier[objmodel.OID(fr.OID)] = fr
	}

	now := e.rt.Clock().Now()
	touched := make([]any, 0, len(p.Objects))
	var memberOIDs []objmodel.OID

	// Pass 1: instantiate or refresh every shipped object, so that pass 2
	// can bind intra-payload references to live instances.
	for _, rec := range p.Objects {
		oid := objmodel.OID(rec.OID)
		if p.Clustered {
			memberOIDs = append(memberOIDs, oid)
		}
		if existing, ok := e.heap.Get(oid); ok {
			// Identity dedupe: refresh the existing copy in place unless it
			// is this site's own master (state bounced back — keep ours).
			if existing.Role == heap.Master {
				continue
			}
			existing.LockState()
			err := objmodel.RestoreState(e.reg, existing.Obj, rec.State)
			existing.UnlockState()
			if err != nil {
				return nil, err
			}
			existing.SetVersion(rec.Version)
			existing.Touch(now)
			existing.SetDirty(false)
			if err := e.journalCleanReplica(existing.OID, rec.Version); err != nil {
				return nil, err
			}
			touched = append(touched, existing.Obj)
			continue
		}
		info, ok := objmodel.InfoByName(rec.TypeName)
		if !ok {
			return nil, fmt.Errorf("replication: unknown type %q in payload", rec.TypeName)
		}
		obj := info.New()
		if err := objmodel.RestoreState(e.reg, obj, rec.State); err != nil {
			return nil, err
		}
		entry, fresh := e.heap.AddReplica(obj, oid, rec.TypeName, rec.Version)
		if !fresh {
			// Raced with another materialization; refresh the winner.
			if err := objmodel.RestoreState(e.reg, entry.Obj, rec.State); err != nil {
				return nil, err
			}
			entry.SetVersion(rec.Version)
		}
		if p.Clustered {
			entry.SetProvider(p.ClusterProvider, objmodel.OID(p.RootOID))
		} else {
			entry.SetProvider(rec.Provider, 0)
		}
		entry.Touch(now)
		touched = append(touched, entry.Obj)
	}

	if p.Clustered && len(memberOIDs) > 0 {
		rootOID := objmodel.OID(p.RootOID)
		e.mu.Lock()
		e.clusters[rootOID] = memberOIDs
		for _, m := range memberOIDs {
			e.inCluster[m] = rootOID
		}
		e.mu.Unlock()
	}

	// Pass 2: bind references, each object under its state lock (a replica
	// may concurrently serve captures for onward replication).
	for _, obj := range touched {
		entry, ok := e.heap.EntryOf(obj)
		if !ok {
			return nil, fmt.Errorf("replication: touched object %T lost its entry", obj)
		}
		entry.LockState()
		err := e.bindRefs(obj, frontier, p.Spec)
		entry.UnlockState()
		if err != nil {
			return nil, err
		}
	}

	// Remember group routes: every shipped object is mastered by the
	// sending group, and so is every frontier target the group itself
	// serves (its provider address is a member).
	if len(p.Group) > 0 {
		member := make(map[transport.Addr]bool, len(p.Group))
		for _, m := range p.Group {
			member[m] = true
		}
		for _, rec := range p.Objects {
			e.recordGroup(objmodel.OID(rec.OID), p.Group)
		}
		for _, fr := range p.Frontier {
			if member[fr.Provider.Addr] {
				e.recordGroup(objmodel.OID(fr.OID), p.Group)
			}
		}
	}

	rootEntry, ok := e.heap.Get(objmodel.OID(p.RootOID))
	if !ok {
		return nil, fmt.Errorf("replication: payload root %d missing after materialization", p.RootOID)
	}
	e.emit(Event{
		Kind: EventPayloadMaterialized, OID: rootEntry.OID, Objects: len(p.Objects),
		Bytes: payloadBytes(p), Frontier: len(p.Frontier), Clustered: p.Clustered,
	})
	return rootEntry.Obj, nil
}

// bindRefs binds every unresolved reference of obj: to a local object when
// the target is here, otherwise to a frontier proxy-out.
func (e *Engine) bindRefs(obj any, frontier map[objmodel.OID]FrontierRef, spec GetSpec) error {
	for _, ref := range objmodel.RefsOf(obj) {
		e.observeRef(ref)
		if ref.IsResolved() {
			continue
		}
		toid := ref.OID()
		if toid == 0 {
			return objmodel.ErrUnboundRef
		}
		if te, ok := e.heap.Get(toid); ok {
			ref.BindLocal(te.Obj, toid)
			if prov := te.Provider(); !prov.IsZero() {
				ref.SetRemote(&remoteInvoker{eng: e, provider: prov, oid: toid})
			}
			continue
		}
		fr, ok := frontier[toid]
		if !ok {
			return fmt.Errorf("replication: reference to %v has no frontier descriptor", toid)
		}
		pout := e.newProxyOut(toid, fr.Provider, spec)
		ref.BindFault(toid, pout, pout)
	}
	return nil
}

// Replicate demands ref's target explicitly with spec, overriding the
// ref's inherited replication parameters — the paper's programmatic
// get(mode). It is a no-op on already-resolved refs.
func (e *Engine) Replicate(ref *objmodel.Ref, spec GetSpec) (any, error) {
	return e.ReplicateTraced(telemetry.SpanContext{}, ref, spec)
}

// ReplicateTraced is Replicate under a causal parent: the demand's fault
// span (and everything the demand causes on other sites) is recorded
// beneath sc. An invalid sc roots a new trace when telemetry is on.
func (e *Engine) ReplicateTraced(sc telemetry.SpanContext, ref *objmodel.Ref, spec GetSpec) (any, error) {
	if ref.IsResolved() {
		return ref.Resolve()
	}
	pout, ok := ref.Faulter().(*ProxyOut)
	if !ok {
		return nil, objmodel.ErrUnboundRef
	}
	local, remote, err := pout.demand(sc, spec.normalize())
	if err != nil {
		return nil, err
	}
	ref.BindLocal(local, ref.OID())
	if remote != nil {
		ref.SetRemote(remote)
	}
	e.gc.ProxyOutReclaimed()
	return local, nil
}

// Put ships a replica's state back to its master — the paper's put. The
// replica must have arrived outside a cluster (ErrClusterMember otherwise).
func (e *Engine) Put(obj any) error {
	return e.PutTraced(telemetry.SpanContext{}, obj)
}

// PutTraced is Put under a causal parent: the shipped update is recorded
// as a "put" span beneath sc, and the master's apply joins the same trace.
func (e *Engine) PutTraced(sc telemetry.SpanContext, obj any) (err error) {
	entry, ok := e.heap.EntryOf(obj)
	if !ok {
		return heap.ErrUnknownObject
	}
	if entry.Role != heap.Replica {
		return ErrNotReplica
	}
	if entry.ClusterMember() {
		return ErrClusterMember
	}
	prov := entry.Provider()
	if prov.IsZero() {
		return ErrNoProvider
	}
	span := e.startSpan(sc, "put")
	span.Annotate("oid", fmt.Sprint(entry.OID))
	defer func() {
		span.SetErr(err)
		span.End()
	}()
	req, err := e.buildPutRequest(entry)
	if err != nil {
		return err
	}
	res, winner, err := e.callFailover(span, entry.OID, prov, BulkTimeout, true, "Put", req)
	if err != nil {
		return fmt.Errorf("replication: put %v: %w", entry.OID, e.failUnavailable("put", entry.OID, span.Context(), err))
	}
	reply, ok := res[0].(*PutReply)
	if !ok {
		return fmt.Errorf("replication: put %v: unexpected reply %T", entry.OID, res[0])
	}
	if winner != prov {
		entry.SetProvider(winner, 0) // re-pin to the answering leader
	}
	entry.SetVersion(reply.NewVersion)
	entry.SetDirty(false)
	if err := e.journalCleanReplica(entry.OID, reply.NewVersion); err != nil {
		return err
	}
	e.emit(Event{Kind: EventPutShipped, OID: entry.OID, Version: reply.NewVersion})
	return nil
}

// PutCluster ships the whole cluster containing obj back to the master as
// one unit.
func (e *Engine) PutCluster(obj any) error {
	return e.PutClusterTraced(telemetry.SpanContext{}, obj)
}

// PutClusterTraced is PutCluster under a causal parent.
func (e *Engine) PutClusterTraced(sc telemetry.SpanContext, obj any) (err error) {
	entry, ok := e.heap.EntryOf(obj)
	if !ok {
		return heap.ErrUnknownObject
	}
	if !entry.ClusterMember() {
		return e.PutTraced(sc, obj)
	}
	root := entry.ClusterRoot()
	span := e.startSpan(sc, "put.cluster")
	span.Annotate("root", fmt.Sprint(root))
	defer func() {
		span.SetErr(err)
		span.End()
	}()
	e.mu.Lock()
	members := append([]objmodel.OID(nil), e.clusters[root]...)
	e.mu.Unlock()
	if len(members) == 0 {
		return fmt.Errorf("replication: cluster %v has no recorded members", root)
	}
	creq := &ClusterPutRequest{Members: make([]PutRequest, 0, len(members))}
	for _, m := range members {
		me, ok := e.heap.Get(m)
		if !ok {
			return fmt.Errorf("replication: cluster member %v evicted", m)
		}
		req, err := e.buildPutRequest(me)
		if err != nil {
			return err
		}
		creq.Members = append(creq.Members, *req)
	}
	prov := entry.Provider()
	if prov.IsZero() {
		return ErrNoProvider
	}
	res, winner, err := e.callFailover(span, root, prov, BulkTimeout, true, "PutCluster", creq)
	if err != nil {
		return fmt.Errorf("replication: put cluster %v: %w", root, e.failUnavailable("put.cluster", root, span.Context(), err))
	}
	versions, ok := res[0].([]any)
	if !ok || len(versions) != len(members) {
		return fmt.Errorf("replication: put cluster %v: unexpected reply %#v", root, res[0])
	}
	for i, m := range members {
		if me, ok := e.heap.Get(m); ok {
			if winner != prov {
				me.SetProvider(winner, root) // re-pin to the answering leader
			}
			var nv uint64
			if v, ok := versions[i].(uint64); ok {
				me.SetVersion(v)
				nv = v
			}
			me.SetDirty(false)
			if err := e.journalCleanReplica(m, nv); err != nil {
				return err
			}
		}
	}
	return nil
}

// buildPutRequest captures a replica's state plus the frontier entries the
// master needs to rebind references it may not know.
func (e *Engine) buildPutRequest(entry *heap.Entry) (*PutRequest, error) {
	state, err := e.captureEntry(entry)
	if err != nil {
		return nil, err
	}
	req := &PutRequest{
		OID:         uint64(entry.OID),
		BaseVersion: entry.Version(),
		State:       state,
	}
	seen := make(map[objmodel.OID]bool)
	entry.LockState()
	refs := objmodel.RefsOf(entry.Obj)
	entry.UnlockState()
	for _, ref := range refs {
		toid := ref.OID()
		if toid == 0 || seen[toid] {
			continue
		}
		seen[toid] = true
		fr, err := e.frontierFor(ref)
		if err != nil {
			return nil, err
		}
		req.Frontier = append(req.Frontier, fr)
	}
	return req, nil
}

// applyPut applies an inbound update at the master (called by ProxyIn).
// sc parents the "put.apply" span — the serve span of the inbound Put.
func (e *Engine) applyPut(sc telemetry.SpanContext, req *PutRequest) (reply *PutReply, err error) {
	span := e.startSpan(sc, "put.apply")
	span.Annotate("oid", fmt.Sprint(objmodel.OID(req.OID)))
	defer func() {
		span.SetErr(err)
		span.End()
	}()
	if span != nil {
		clk := e.rt.Clock()
		start := clk.Now()
		defer func() { span.Phase(telemetry.PhaseApply, clk.Now().Sub(start)) }()
	}
	entry, ok := e.heap.Get(objmodel.OID(req.OID))
	if !ok {
		return nil, fmt.Errorf("%w: %d", heap.ErrUnknownObject, req.OID)
	}
	// Exactly-once across master restarts: the rmi dedupe table died with
	// the previous life, so a retried put can reach a reborn master as a
	// "new" call. The journaled (base, checksum) pair identifies it; hand
	// back the recorded reply instead of applying twice.
	crc := stateCRC(req.State)
	e.mu.Lock()
	if ap, ok := e.appliedPuts[entry.OID]; ok && ap.base == req.BaseVersion && ap.crc == crc {
		v := ap.version
		e.mu.Unlock()
		e.emit(Event{Kind: EventPutApplied, OID: entry.OID, Version: v})
		return &PutReply{NewVersion: v}, nil
	}
	e.mu.Unlock()
	if err := e.getPolicy().ApplyPut(entry.OID, entry.Version(), req.BaseVersion); err != nil {
		return nil, err
	}
	frontier := make(map[objmodel.OID]FrontierRef, len(req.Frontier))
	for _, fr := range req.Frontier {
		frontier[objmodel.OID(fr.OID)] = fr
	}
	if err := e.restoreEntry(entry, req.State, frontier, DefaultSpec); err != nil {
		return nil, err
	}
	v := entry.BumpVersion()
	e.mu.Lock()
	e.appliedPuts[entry.OID] = appliedPut{base: req.BaseVersion, crc: crc, version: v}
	e.mu.Unlock()
	if span != nil {
		// The journal write is the durability cost of the put: encode +
		// WAL append + group-commit fsync. Billed as the fsync phase so
		// attribution separates "the disk is slow" from apply proper.
		clk := e.rt.Clock()
		jStart := clk.Now()
		if err := e.journalMaster(entry); err != nil {
			return nil, err
		}
		span.Phase(telemetry.PhaseFsync, clk.Now().Sub(jStart))
	} else if err := e.journalMaster(entry); err != nil {
		return nil, err
	}
	e.getPolicy().MasterUpdated(entry.OID, v)
	e.emit(Event{Kind: EventPutApplied, OID: entry.OID, Version: v})
	return &PutReply{NewVersion: v}, nil
}

// Refresh re-fetches a replica's state from its master (the get-refresh
// path of §2.2 step 3). Cluster members refresh their whole cluster.
func (e *Engine) Refresh(obj any) error {
	return e.RefreshTraced(telemetry.SpanContext{}, obj)
}

// RefreshTraced is Refresh under a causal parent.
func (e *Engine) RefreshTraced(sc telemetry.SpanContext, obj any) (err error) {
	entry, ok := e.heap.EntryOf(obj)
	if !ok {
		return heap.ErrUnknownObject
	}
	if entry.Role != heap.Replica {
		return ErrNotReplica
	}
	prov := entry.Provider()
	if prov.IsZero() {
		return ErrNoProvider
	}
	// Runtime clock, not wall clock: see ProxyOut.demand — refresh costs land
	// in the profiler and must replay bit-identically under a virtual clock.
	clk := e.rt.Clock()
	start := clk.Now()
	span := e.startSpan(sc, "refresh")
	span.Annotate("oid", fmt.Sprint(entry.OID))
	defer func() {
		span.SetErr(err)
		span.End()
	}()
	spec := GetSpec{Mode: Incremental, Batch: 1}
	if entry.ClusterMember() {
		e.mu.Lock()
		spec = GetSpec{Mode: Incremental, Batch: len(e.clusters[entry.ClusterRoot()]), Clustered: true}
		e.mu.Unlock()
	}
	res, _, err := e.callFailover(span, entry.OID, prov, BulkTimeout, true, "Get", &spec, string(e.rt.Addr()))
	if err != nil {
		return fmt.Errorf("replication: refresh %v: %w", entry.OID, e.failUnavailable("refresh", entry.OID, span.Context(), err))
	}
	payload, ok := res[0].(*Payload)
	if !ok {
		return fmt.Errorf("replication: refresh %v: unexpected reply %T", entry.OID, res[0])
	}
	if _, err := e.materialize(span.Context(), payload); err != nil {
		return err
	}
	e.emit(Event{
		Kind: EventReplicaRefreshed, OID: entry.OID, Objects: len(payload.Objects),
		Bytes: payloadBytes(payload), Clustered: payload.Clustered, Elapsed: clk.Now().Sub(start),
	})
	return nil
}

// MarkUpdated records a state change. On masters it bumps the version and
// fires the MasterUpdated hook (driving invalidation-based consistency); on
// replicas it sets the dirty flag for the transaction layer.
func (e *Engine) MarkUpdated(obj any) error {
	entry, ok := e.heap.EntryOf(obj)
	if !ok {
		return heap.ErrUnknownObject
	}
	if entry.Role == heap.Master {
		if g := e.masterGate(); g != nil {
			// Agree the update through the group log so every member's
			// copy (state and version) moves together; the hook fires
			// here, at the proposing member, once.
			v, err := g.RouteBump(entry)
			if err != nil {
				return err
			}
			e.getPolicy().MasterUpdated(entry.OID, v)
			return nil
		}
		v := entry.BumpVersion()
		if err := e.journalMaster(entry); err != nil {
			return err
		}
		e.getPolicy().MasterUpdated(entry.OID, v)
		return nil
	}
	entry.SetDirty(true)
	return e.journalDirtyReplica(entry)
}

// getPolicy returns the current consistency policy.
func (e *Engine) getPolicy() Policy {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.policy
}

// ForgetCluster drops the client-side membership bookkeeping of the
// cluster rooted at root (after its replicas were evicted). Idempotent.
func (e *Engine) ForgetCluster(root objmodel.OID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, m := range e.clusters[root] {
		delete(e.inCluster, m)
	}
	delete(e.clusters, root)
}

// BindLocalRefs binds every unresolved reference of obj against the local
// heap only (no frontier). It is used when state is restored from a local
// snapshot — e.g. a transaction rollback — where every referenced object is
// already present.
func (e *Engine) BindLocalRefs(obj any) error {
	return e.bindRefs(obj, nil, DefaultSpec)
}

// CaptureSnapshot serializes obj's current state (for transaction
// pre-images and checkpoints), holding the heap entry's state lock if obj
// is heap-managed.
func (e *Engine) CaptureSnapshot(obj any) ([]byte, error) {
	if entry, ok := e.heap.EntryOf(obj); ok {
		return e.captureEntry(entry)
	}
	return objmodel.CaptureState(e.reg, obj)
}

// RestoreSnapshot restores obj from a snapshot taken with CaptureSnapshot
// and rebinds its references locally.
func (e *Engine) RestoreSnapshot(obj any, state []byte) error {
	if entry, ok := e.heap.EntryOf(obj); ok {
		return e.restoreEntry(entry, state, nil, DefaultSpec)
	}
	if err := objmodel.RestoreState(e.reg, obj, state); err != nil {
		return err
	}
	return e.BindLocalRefs(obj)
}

// BuildFrontier returns the frontier descriptors for every reference obj
// currently holds — what a peer site needs to rebind those references
// after restoring obj's state (used by update dissemination).
func (e *Engine) BuildFrontier(obj any) ([]FrontierRef, error) {
	var out []FrontierRef
	refs := objmodel.RefsOf(obj)
	if entry, ok := e.heap.EntryOf(obj); ok {
		entry.LockState()
		refs = objmodel.RefsOf(obj)
		entry.UnlockState()
	}
	seen := make(map[objmodel.OID]bool)
	for _, ref := range refs {
		toid := ref.OID()
		if toid == 0 || seen[toid] {
			continue
		}
		seen[toid] = true
		fr, err := e.frontierFor(ref)
		if err != nil {
			return nil, err
		}
		out = append(out, fr)
	}
	return out, nil
}

// RestoreWithFrontier restores obj from state and rebinds its references:
// locally where the targets exist, through fresh proxy-outs built from the
// frontier otherwise.
func (e *Engine) RestoreWithFrontier(obj any, state []byte, frontier []FrontierRef) error {
	fmap := make(map[objmodel.OID]FrontierRef, len(frontier))
	for _, fr := range frontier {
		fmap[objmodel.OID(fr.OID)] = fr
	}
	if entry, ok := e.heap.EntryOf(obj); ok {
		return e.restoreEntry(entry, state, fmap, DefaultSpec)
	}
	if err := objmodel.RestoreState(e.reg, obj, state); err != nil {
		return err
	}
	return e.bindRefs(obj, fmap, DefaultSpec)
}
