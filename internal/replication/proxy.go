package replication

import (
	"fmt"

	"obiwan/internal/heap"
	"obiwan/internal/invoke"
	"obiwan/internal/objmodel"
	"obiwan/internal/rmi"
	"obiwan/internal/telemetry"
)

// ProxyIn is the master-side half of a proxy pair: an RMI-exported object
// standing for one master object (or, in clustered mode, a cluster rooted
// at it). It implements the paper's IProvideRemote interface — get and put
// invoked remotely — plus Invoke, the path that lets a reference holder
// call the master directly over RMI instead of replicating.
type ProxyIn struct {
	eng   *Engine
	entry *heap.Entry
}

// Get assembles and returns the replica payload for this object per spec.
// requester identifies the demanding site for consistency bookkeeping.
// The leading SpanContext is never sent by callers: the RMI skeleton
// injects the serve span's context there (zero when the call was
// untraced), which parents the assembly under the demanding site's fault.
func (p *ProxyIn) Get(sc telemetry.SpanContext, spec *GetSpec, requester string) (*Payload, error) {
	if err := p.eng.gateServe(p.entry); err != nil {
		return nil, err
	}
	if spec == nil {
		s := DefaultSpec
		spec = &s
	}
	payload, err := p.eng.assemble(sc, p.entry, *spec, requester)
	if err != nil {
		return nil, fmt.Errorf("proxy-in %v: %w", p.entry.OID, err)
	}
	return payload, nil
}

// Put applies a replica's state to the master object. The SpanContext is
// skeleton-injected (see Get).
func (p *ProxyIn) Put(sc telemetry.SpanContext, req *PutRequest) (*PutReply, error) {
	if req == nil {
		return nil, fmt.Errorf("proxy-in %v: nil put request", p.entry.OID)
	}
	if objmodel.OID(req.OID) != p.entry.OID {
		return nil, fmt.Errorf("proxy-in %v: put addressed to %d", p.entry.OID, req.OID)
	}
	if g := p.eng.masterGate(); g != nil && p.entry.Role == heap.Master {
		return g.RoutePut(sc, req)
	}
	return p.eng.applyPut(sc, req)
}

// PutCluster applies a whole-cluster update. Members must belong to the
// cluster this proxy-in serves (they were shipped through it). The reply is
// the new version of each member, in request order. The SpanContext is
// skeleton-injected (see Get).
func (p *ProxyIn) PutCluster(sc telemetry.SpanContext, req *ClusterPutRequest) ([]any, error) {
	if req == nil || len(req.Members) == 0 {
		return nil, fmt.Errorf("proxy-in %v: empty cluster put", p.entry.OID)
	}
	gate := p.eng.masterGate()
	gated := gate != nil && p.entry.Role == heap.Master
	versions := make([]any, 0, len(req.Members))
	for i := range req.Members {
		var reply *PutReply
		var err error
		if gated {
			reply, err = gate.RoutePut(sc, &req.Members[i])
		} else {
			reply, err = p.eng.applyPut(sc, &req.Members[i])
		}
		if err != nil {
			return nil, fmt.Errorf("cluster member %d (oid %v): %w", i, objmodel.OID(req.Members[i].OID), err)
		}
		versions = append(versions, reply.NewVersion)
	}
	return versions, nil
}

// Invoke runs a method on the master object — the RMI invocation mode. The
// mutation state of the master is the application's concern, exactly as in
// the paper. On a grouped site only the leaseholder serves invokes: a
// follower's copy may trail the agreed log.
func (p *ProxyIn) Invoke(method string, args []any) ([]any, error) {
	if err := p.eng.gateServe(p.entry); err != nil {
		return nil, err
	}
	return invoke.Call(p.entry.Obj, method, args)
}

// Version returns the master object's current version, letting replicas
// check staleness cheaply.
func (p *ProxyIn) Version() uint64 {
	return p.entry.Version()
}

// ProxyOut is the client-side half of a proxy pair: it stands in for a not
// yet replicated object. A method invocation through a Ref backed by a
// ProxyOut is an object fault; ResolveFault performs the paper's demand
// protocol and the Ref splices the fresh replica in (updateMember), after
// which the ProxyOut is garbage.
type ProxyOut struct {
	eng      *Engine
	oid      objmodel.OID
	provider rmi.RemoteRef
	spec     GetSpec
}

var (
	_ objmodel.Faulter       = (*ProxyOut)(nil)
	_ objmodel.RemoteInvoker = (*ProxyOut)(nil)
	_ objmodel.AutoDecider   = (*ProxyOut)(nil)
)

// newProxyOut creates and accounts a proxy-out.
func (e *Engine) newProxyOut(oid objmodel.OID, provider rmi.RemoteRef, spec GetSpec) *ProxyOut {
	e.gc.ProxyOutCreated()
	return &ProxyOut{eng: e, oid: oid, provider: provider, spec: spec}
}

// Provider returns the proxy-in this proxy-out demands from.
func (p *ProxyOut) Provider() rmi.RemoteRef { return p.provider }

// OID returns the identity of the object this proxy-out stands for.
func (p *ProxyOut) OID() objmodel.OID { return p.oid }

// ResolveFault implements objmodel.Faulter: it satisfies the fault from the
// local heap when possible, otherwise demands the target (and its
// batch/cluster) from the provider.
func (p *ProxyOut) ResolveFault() (any, objmodel.RemoteInvoker, error) {
	local, remote, err := p.demand(telemetry.SpanContext{}, p.spec)
	if err != nil {
		return nil, nil, err
	}
	// The Ref will splice us out; we are garbage after this return.
	p.eng.gc.ProxyOutReclaimed()
	return local, remote, nil
}

// demand fetches the target with an explicit spec. sc parents the "fault"
// span — invalid sc roots a new trace (an implicit object fault is a
// causal origin), while ReplicateTraced passes the caller's context so
// programmatic demands nest under application spans.
func (p *ProxyOut) demand(sc telemetry.SpanContext, spec GetSpec) (obj any, inv objmodel.RemoteInvoker, err error) {
	// Elapsed rides the runtime's clock, not the wall clock: under a virtual
	// clock the measured fault cost must be a pure function of the simulation
	// (profiler snapshots travel on federation scrape replies, so a wall
	// duration would perturb frame sizes and break replay determinism).
	clk := p.eng.rt.Clock()
	start := clk.Now()
	span := p.eng.startSpan(sc, "fault")
	span.Annotate("oid", fmt.Sprint(p.oid))
	defer func() {
		span.SetErr(err)
		span.End()
	}()
	// Fast path: the object is already replicated at this site (it arrived
	// in someone else's batch). Identity dedupe binds to the same replica.
	if p.oid != 0 {
		if entry, ok := p.eng.heap.Get(p.oid); ok {
			p.eng.gc.FaultServedFromHeap()
			span.Annotate("from_heap", "true")
			p.eng.emit(Event{Kind: EventFaultResolved, OID: p.oid, FromHeap: true, Elapsed: clk.Now().Sub(start)})
			return entry.Obj, p.remoteForEntry(entry), nil
		}
	}
	res, winner, err := p.eng.callFailover(span, p.oid, p.provider, BulkTimeout, true, "Get", &spec, string(p.eng.rt.Addr()))
	if err != nil {
		return nil, nil, fmt.Errorf("demand %v from %v: %w", p.oid, p.provider, p.eng.failUnavailable("demand", p.oid, span.Context(), err))
	}
	payload, ok := res[0].(*Payload)
	if !ok {
		return nil, nil, fmt.Errorf("demand %v: unexpected reply %T", p.oid, res[0])
	}
	root, err := p.eng.materialize(span.Context(), payload)
	if err != nil {
		return nil, nil, err
	}
	p.eng.emit(Event{
		Kind: EventFaultResolved, OID: p.oid, Objects: len(payload.Objects),
		Bytes: payloadBytes(payload), Clustered: payload.Clustered, Elapsed: clk.Now().Sub(start),
	})
	return root, &remoteInvoker{eng: p.eng, provider: winner, oid: p.oid}, nil
}

// remoteForEntry builds the master-directed invoker for an entry, if it has
// a provider.
func (p *ProxyOut) remoteForEntry(e *heap.Entry) objmodel.RemoteInvoker {
	if prov := e.Provider(); !prov.IsZero() {
		return &remoteInvoker{eng: p.eng, provider: prov, oid: p.oid}
	}
	return &remoteInvoker{eng: p.eng, provider: p.provider, oid: p.oid}
}

// RemoteInvoke implements objmodel.RemoteInvoker: it calls the master
// through the proxy-in without replicating. Leader redirects are followed
// (a not-leader refusal guarantees the invoke did not run), but transient
// failures are NOT re-routed: an invoke is not idempotent.
func (p *ProxyOut) RemoteInvoke(method string, args []any) ([]any, error) {
	res, _, err := p.eng.callFailover(nil, p.oid, p.provider, p.eng.rt.DefaultCallTimeout(), false, "Invoke", method, args)
	if err != nil {
		return nil, p.eng.failUnavailable("invoke", p.oid, telemetry.SpanContext{}, err)
	}
	if len(res) == 0 || res[0] == nil {
		return nil, nil
	}
	out, ok := res[0].([]any)
	if !ok {
		return nil, fmt.Errorf("remote invoke %s: unexpected reply %T", method, res[0])
	}
	return out, nil
}

// PreferLocal implements objmodel.AutoDecider by delegating to the
// engine's crossover model (default: replicate immediately).
func (p *ProxyOut) PreferLocal(calls uint64) bool {
	if c := p.eng.getCrossover(); c != nil {
		return c(p.provider.Addr, p.oid, calls)
	}
	return true
}

// remoteInvoker is the lightweight master-directed invoker a Ref keeps
// after resolution, so ModeRemote keeps working once the ProxyOut is gone.
// It carries the target's identity so RMI failures are attributable in
// the flight recorder.
type remoteInvoker struct {
	eng      *Engine
	provider rmi.RemoteRef
	oid      objmodel.OID
}

var _ objmodel.RemoteInvoker = (*remoteInvoker)(nil)

func (ri *remoteInvoker) RemoteInvoke(method string, args []any) ([]any, error) {
	res, _, err := ri.eng.callFailover(nil, ri.oid, ri.provider, ri.eng.rt.DefaultCallTimeout(), false, "Invoke", method, args)
	if err != nil {
		return nil, ri.eng.failUnavailable("invoke", ri.oid, telemetry.SpanContext{}, err)
	}
	if len(res) == 0 || res[0] == nil {
		return nil, nil
	}
	out, ok := res[0].([]any)
	if !ok {
		return nil, fmt.Errorf("remote invoke %s: unexpected reply %T", method, res[0])
	}
	return out, nil
}
