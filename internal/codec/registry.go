package codec

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
)

// Marshaler lets a type take over its own wire encoding. Types implementing
// Marshaler/Unmarshaler bypass the reflection-based struct codec; OBIWAN uses
// this for reference fields, whose wire form is an object identifier rather
// than the pointed-to data (the "swizzling" of the persistent-object
// literature the paper cites).
type Marshaler interface {
	MarshalOBI(e *Encoder) error
}

// Unmarshaler is the decoding counterpart of Marshaler.
type Unmarshaler interface {
	UnmarshalOBI(d *Decoder) error
}

var (
	marshalerType   = reflect.TypeOf((*Marshaler)(nil)).Elem()
	unmarshalerType = reflect.TypeOf((*Unmarshaler)(nil)).Elem()
)

// Registry maps stable wire names to Go types so that two sites can exchange
// struct values without sharing memory. It plays the role that class names
// and dynamic class loading play for Java serialization in the original
// OBIWAN prototype.
//
// A Registry is safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]reflect.Type
	byType map[reflect.Type]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName: make(map[string]reflect.Type),
		byType: make(map[reflect.Type]string),
	}
}

// Register binds name to the dynamic type of sample. If sample is a pointer,
// the element type is registered; values are always decoded as pointers to
// the registered type when the caller asks for a pointer. Registering the
// same name twice with the same type is a no-op; re-registering a name with
// a different type is reported as an error.
func (r *Registry) Register(name string, sample any) error {
	if name == "" {
		return fmt.Errorf("codec: empty registration name")
	}
	t := reflect.TypeOf(sample)
	if t == nil {
		return fmt.Errorf("codec: cannot register nil sample for %q", name)
	}
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[name]; ok {
		if prev == t {
			return nil
		}
		return fmt.Errorf("codec: name %q already registered for %v, cannot rebind to %v", name, prev, t)
	}
	if prev, ok := r.byType[t]; ok && prev != name {
		return fmt.Errorf("codec: type %v already registered as %q, cannot rebind to %q", t, prev, name)
	}
	r.byName[name] = t
	r.byType[t] = name
	return nil
}

// MustRegister is Register but panics on error. It is intended for
// package-scoped registration of wire types, where a failure is a programmer
// error caught by the first test run.
func (r *Registry) MustRegister(name string, sample any) {
	if err := r.Register(name, sample); err != nil {
		panic(err)
	}
}

// NameOf returns the wire name registered for v's dynamic type (pointer
// indirections stripped).
func (r *Registry) NameOf(v any) (string, bool) {
	t := reflect.TypeOf(v)
	if t == nil {
		return "", false
	}
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	name, ok := r.byType[t]
	return name, ok
}

// TypeOf returns the Go type registered under name.
func (r *Registry) TypeOf(name string) (reflect.Type, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.byName[name]
	return t, ok
}

// Names returns all registered wire names, sorted. Useful for diagnostics.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// defaultRegistry backs the package-level Register helpers. OBIWAN's own
// wire types register themselves here, mirroring the encoding/gob
// convention.
var defaultRegistry = NewRegistry()

// Register binds name to sample's type in the default registry.
func Register(name string, sample any) error { return defaultRegistry.Register(name, sample) }

// MustRegister is Register but panics on error.
func MustRegister(name string, sample any) { defaultRegistry.MustRegister(name, sample) }

// DefaultRegistry returns the process-wide registry used by Encoder.Value
// and Decoder.Value.
func DefaultRegistry() *Registry { return defaultRegistry }
