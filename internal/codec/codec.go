// Package codec implements the self-describing binary encoding used by the
// OBIWAN wire protocol and by object-graph replication payloads.
//
// The original OBIWAN prototype relied on Java serialization, performed by
// the JVM, to ship replicas and RMI arguments between sites. Go has no
// equivalent facility for dynamic object graphs, so this package provides
// one: a compact, deterministic, stdlib-only format with
//
//   - primitive encoders/decoders (varints, strings, byte slices, floats),
//   - a type-tagged encoding for arbitrary values ("Value"), covering
//     primitives, slices, maps, and registered named struct types, and
//   - a registry (see registry.go) that maps stable wire names to Go types
//     so both sites agree on struct layouts without sharing memory.
//
// All decode paths are defensive: lengths are bounded by the decoder's
// remaining input so corrupt or hostile payloads cannot trigger huge
// allocations.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Common decode errors.
var (
	// ErrTruncated is returned when the input ends in the middle of a value.
	ErrTruncated = errors.New("codec: truncated input")
	// ErrCorrupt is returned when the input is structurally invalid, for
	// example a length prefix larger than the remaining input.
	ErrCorrupt = errors.New("codec: corrupt input")
	// ErrTypeMismatch is returned when a decoded wire tag does not match the
	// type requested by the caller.
	ErrTypeMismatch = errors.New("codec: wire type mismatch")
)

// Encoder appends values to an internal buffer. The zero value is ready to
// use. Encoders must not be used concurrently.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with capacity pre-allocated for sizeHint
// bytes.
func NewEncoder(sizeHint int) *Encoder {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Encoder{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the encoded buffer. The returned slice aliases the encoder's
// internal storage and is invalidated by further writes.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards all encoded data but retains the underlying storage.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// WriteUvarint appends v in unsigned LEB128 form.
func (e *Encoder) WriteUvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// WriteVarint appends v in zig-zag LEB128 form.
func (e *Encoder) WriteVarint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// WriteBool appends a single 0/1 byte.
func (e *Encoder) WriteBool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// WriteByte appends a single raw byte. It never fails; the error return
// satisfies io.ByteWriter.
func (e *Encoder) WriteByte(b byte) error {
	e.buf = append(e.buf, b)
	return nil
}

// WriteFloat64 appends v as 8 little-endian IEEE-754 bytes.
func (e *Encoder) WriteFloat64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// WriteString appends a length-prefixed UTF-8 string.
func (e *Encoder) WriteString(s string) {
	e.WriteUvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// WriteBytes appends a length-prefixed byte slice. A nil slice is encoded
// identically to an empty one.
func (e *Encoder) WriteBytes(b []byte) {
	e.WriteUvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// WriteRaw appends b without a length prefix. The decoder must know the
// exact length out of band.
func (e *Encoder) WriteRaw(b []byte) {
	e.buf = append(e.buf, b...)
}

// Decoder reads values from a byte slice. Decoders must not be used
// concurrently.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder over buf. The decoder does not copy buf; the
// caller must not mutate it while decoding.
func NewDecoder(buf []byte) *Decoder {
	return &Decoder{buf: buf}
}

// Remaining returns the number of undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset returns the current read position.
func (d *Decoder) Offset() int { return d.off }

// ReadUvarint decodes an unsigned LEB128 value.
func (d *Decoder) ReadUvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			return 0, ErrTruncated
		}
		return 0, fmt.Errorf("%w: uvarint overflow at offset %d", ErrCorrupt, d.off)
	}
	d.off += n
	return v, nil
}

// ReadVarint decodes a zig-zag LEB128 value.
func (d *Decoder) ReadVarint() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			return 0, ErrTruncated
		}
		return 0, fmt.Errorf("%w: varint overflow at offset %d", ErrCorrupt, d.off)
	}
	d.off += n
	return v, nil
}

// ReadBool decodes a single 0/1 byte.
func (d *Decoder) ReadBool() (bool, error) {
	b, err := d.ReadByte()
	if err != nil {
		return false, err
	}
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("%w: invalid bool byte %#x at offset %d", ErrCorrupt, b, d.off-1)
	}
}

// ReadByte decodes a single raw byte.
func (d *Decoder) ReadByte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, ErrTruncated
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

// ReadFloat64 decodes 8 little-endian IEEE-754 bytes.
func (d *Decoder) ReadFloat64() (float64, error) {
	if d.Remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return math.Float64frombits(v), nil
}

// readLen decodes a length prefix and validates it against the remaining
// input so corrupt lengths cannot force oversized allocations.
func (d *Decoder) readLen() (int, error) {
	n, err := d.ReadUvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(d.Remaining()) {
		return 0, fmt.Errorf("%w: length %d exceeds remaining %d bytes", ErrCorrupt, n, d.Remaining())
	}
	return int(n), nil
}

// ReadString decodes a length-prefixed string.
func (d *Decoder) ReadString() (string, error) {
	n, err := d.readLen()
	if err != nil {
		return "", err
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s, nil
}

// ReadBytes decodes a length-prefixed byte slice. The result is a copy and
// remains valid after the decoder's input is released.
func (d *Decoder) ReadBytes() ([]byte, error) {
	n, err := d.readLen()
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+n])
	d.off += n
	return out, nil
}

// ReadRaw decodes exactly n bytes without a length prefix. The returned
// slice aliases the decoder's input.
func (d *Decoder) ReadRaw(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative raw length %d", ErrCorrupt, n)
	}
	if n > d.Remaining() {
		return nil, ErrTruncated
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

// countedLen decodes a count prefix (for slices and maps) and sanity-checks
// it: every element needs at least one byte of input, so a count larger than
// the remaining byte count is necessarily corrupt.
func (d *Decoder) countedLen() (int, error) {
	n, err := d.ReadUvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(d.Remaining()) {
		return 0, fmt.Errorf("%w: element count %d exceeds remaining %d bytes", ErrCorrupt, n, d.Remaining())
	}
	return int(n), nil
}
