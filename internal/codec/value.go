package codec

import (
	"fmt"
	"reflect"
	"time"
)

// timeType gets bespoke wire treatment: time.Time's fields are unexported,
// so the generic struct walk would silently encode nothing.
var timeType = reflect.TypeOf(time.Time{})

// Wire tags for the self-describing Value encoding. The tag space is
// append-only; never renumber released tags.
const (
	tagNil    byte = 0x00
	tagFalse  byte = 0x01
	tagTrue   byte = 0x02
	tagInt    byte = 0x03 // zig-zag varint; all signed integer kinds
	tagUint   byte = 0x04 // uvarint; all unsigned integer kinds
	tagFloat  byte = 0x05 // 8-byte IEEE-754; float32 widened
	tagString byte = 0x06
	tagBytes  byte = 0x07
	tagSlice  byte = 0x08 // count + Values
	tagMap    byte = 0x09 // count + (string key, Value) pairs
	tagNamed  byte = 0x0a // registered type: name + type-directed payload
)

// Value encodes v in self-describing form so a peer can decode it without
// prior type knowledge. Supported values: nil, booleans, all integer and
// float kinds, strings, []byte, []any, map[string]any, and any value whose
// (pointer-stripped) type is registered with the registry. Registered values
// decode as pointers to the registered type.
//
// Value is the encoding used for RMI arguments and results, mirroring how
// Java RMI serializes call frames.
func (e *Encoder) Value(reg *Registry, v any) error {
	if v == nil {
		e.buf = append(e.buf, tagNil)
		return nil
	}
	switch x := v.(type) {
	case bool:
		if x {
			e.buf = append(e.buf, tagTrue)
		} else {
			e.buf = append(e.buf, tagFalse)
		}
		return nil
	case int:
		return e.taggedInt(int64(x))
	case int8:
		return e.taggedInt(int64(x))
	case int16:
		return e.taggedInt(int64(x))
	case int32:
		return e.taggedInt(int64(x))
	case int64:
		return e.taggedInt(x)
	case uint:
		return e.taggedUint(uint64(x))
	case uint8:
		return e.taggedUint(uint64(x))
	case uint16:
		return e.taggedUint(uint64(x))
	case uint32:
		return e.taggedUint(uint64(x))
	case uint64:
		return e.taggedUint(x)
	case uintptr:
		return e.taggedUint(uint64(x))
	case float32:
		e.buf = append(e.buf, tagFloat)
		e.WriteFloat64(float64(x))
		return nil
	case float64:
		e.buf = append(e.buf, tagFloat)
		e.WriteFloat64(x)
		return nil
	case string:
		e.buf = append(e.buf, tagString)
		e.WriteString(x)
		return nil
	case []byte:
		e.buf = append(e.buf, tagBytes)
		e.WriteBytes(x)
		return nil
	case []any:
		e.buf = append(e.buf, tagSlice)
		e.WriteUvarint(uint64(len(x)))
		for i, el := range x {
			if err := e.Value(reg, el); err != nil {
				return fmt.Errorf("slice element %d: %w", i, err)
			}
		}
		return nil
	case map[string]any:
		e.buf = append(e.buf, tagMap)
		e.WriteUvarint(uint64(len(x)))
		for _, k := range sortedKeys(x) {
			e.WriteString(k)
			if err := e.Value(reg, x[k]); err != nil {
				return fmt.Errorf("map key %q: %w", k, err)
			}
		}
		return nil
	}
	// Typed slices and string-keyed maps encode like their canonical
	// counterparts ([]any / map[string]any) via reflection; they decode as
	// the canonical forms.
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Slice, reflect.Array:
		if _, registered := reg.NameOf(v); !registered {
			e.buf = append(e.buf, tagSlice)
			e.WriteUvarint(uint64(rv.Len()))
			for i := 0; i < rv.Len(); i++ {
				if err := e.Value(reg, rv.Index(i).Interface()); err != nil {
					return fmt.Errorf("slice element %d: %w", i, err)
				}
			}
			return nil
		}
	case reflect.Map:
		if rv.Type().Key().Kind() == reflect.String {
			if _, registered := reg.NameOf(v); !registered {
				keys := make([]string, 0, rv.Len())
				iter := rv.MapRange()
				for iter.Next() {
					keys = append(keys, iter.Key().String())
				}
				for i := 1; i < len(keys); i++ {
					for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
						keys[j], keys[j-1] = keys[j-1], keys[j]
					}
				}
				e.buf = append(e.buf, tagMap)
				e.WriteUvarint(uint64(len(keys)))
				for _, k := range keys {
					e.WriteString(k)
					kv := rv.MapIndex(reflect.ValueOf(k).Convert(rv.Type().Key()))
					if err := e.Value(reg, kv.Interface()); err != nil {
						return fmt.Errorf("map key %q: %w", k, err)
					}
				}
				return nil
			}
		}
	}

	// Fall back to the registry for named types.
	name, ok := reg.NameOf(v)
	if !ok {
		return fmt.Errorf("codec: unsupported value type %T (not registered)", v)
	}
	e.buf = append(e.buf, tagNamed)
	e.WriteString(name)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return fmt.Errorf("codec: nil pointer of registered type %q", name)
		}
		rv = rv.Elem()
	}
	return e.encodeReflect(reg, rv)
}

func (e *Encoder) taggedInt(v int64) error {
	e.buf = append(e.buf, tagInt)
	e.WriteVarint(v)
	return nil
}

func (e *Encoder) taggedUint(v uint64) error {
	e.buf = append(e.buf, tagUint)
	e.WriteUvarint(v)
	return nil
}

// Value decodes a value written by Encoder.Value. Named types decode as a
// pointer to the registered struct type.
func (d *Decoder) Value(reg *Registry) (any, error) {
	tag, err := d.ReadByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNil:
		return nil, nil
	case tagFalse:
		return false, nil
	case tagTrue:
		return true, nil
	case tagInt:
		return d.ReadVarint()
	case tagUint:
		return d.ReadUvarint()
	case tagFloat:
		return d.ReadFloat64()
	case tagString:
		return d.ReadString()
	case tagBytes:
		return d.ReadBytes()
	case tagSlice:
		n, err := d.countedLen()
		if err != nil {
			return nil, err
		}
		out := make([]any, n)
		for i := range out {
			el, err := d.Value(reg)
			if err != nil {
				return nil, fmt.Errorf("slice element %d: %w", i, err)
			}
			out[i] = el
		}
		return out, nil
	case tagMap:
		n, err := d.countedLen()
		if err != nil {
			return nil, err
		}
		out := make(map[string]any, n)
		for i := 0; i < n; i++ {
			k, err := d.ReadString()
			if err != nil {
				return nil, err
			}
			v, err := d.Value(reg)
			if err != nil {
				return nil, fmt.Errorf("map key %q: %w", k, err)
			}
			out[k] = v
		}
		return out, nil
	case tagNamed:
		name, err := d.ReadString()
		if err != nil {
			return nil, err
		}
		t, ok := reg.TypeOf(name)
		if !ok {
			return nil, fmt.Errorf("codec: unknown wire type %q", name)
		}
		pv := reflect.New(t)
		if err := d.decodeReflect(reg, pv.Elem()); err != nil {
			return nil, fmt.Errorf("named type %q: %w", name, err)
		}
		return pv.Interface(), nil
	default:
		return nil, fmt.Errorf("%w: unknown value tag %#x", ErrCorrupt, tag)
	}
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: RMI frames carry few keys and this avoids pulling in
	// sort for the hot encode path.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// EncodeStruct encodes v (a struct or pointer to struct) with the
// type-directed reflection codec. Both sites must agree on the Go type; use
// Value for self-describing encoding.
func (e *Encoder) EncodeStruct(reg *Registry, v any) error {
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return fmt.Errorf("codec: EncodeStruct of nil pointer")
		}
		rv = rv.Elem()
	}
	return e.encodeReflect(reg, rv)
}

// DecodeStruct decodes into v, which must be a non-nil pointer to the same
// type encoded with EncodeStruct.
func (d *Decoder) DecodeStruct(reg *Registry, v any) error {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("codec: DecodeStruct needs a non-nil pointer, got %T", v)
	}
	return d.decodeReflect(reg, rv.Elem())
}

// encodeReflect is the type-directed codec: it walks rv's static structure.
// Types implementing Marshaler take over their own encoding (checked on
// both the value and its address). Pointers always carry a presence byte
// first, so nil and custom-marshaled pointees stay symmetric on the wire.
func (e *Encoder) encodeReflect(reg *Registry, rv reflect.Value) error {
	if rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			e.WriteBool(false)
			return nil
		}
		e.WriteBool(true)
		return e.encodeReflect(reg, rv.Elem())
	}
	if m, ok := asMarshaler(rv); ok {
		return m.MarshalOBI(e)
	}
	if rv.Type() == timeType {
		t := rv.Interface().(time.Time)
		e.WriteVarint(t.UnixNano())
		return nil
	}
	switch rv.Kind() {
	case reflect.Bool:
		e.WriteBool(rv.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		e.WriteVarint(rv.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		e.WriteUvarint(rv.Uint())
	case reflect.Float32, reflect.Float64:
		e.WriteFloat64(rv.Float())
	case reflect.String:
		e.WriteString(rv.String())
	case reflect.Slice:
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			e.WriteBytes(rv.Bytes())
			return nil
		}
		e.WriteUvarint(uint64(rv.Len()))
		for i := 0; i < rv.Len(); i++ {
			if err := e.encodeReflect(reg, rv.Index(i)); err != nil {
				return fmt.Errorf("[%d]: %w", i, err)
			}
		}
	case reflect.Array:
		for i := 0; i < rv.Len(); i++ {
			if err := e.encodeReflect(reg, rv.Index(i)); err != nil {
				return fmt.Errorf("[%d]: %w", i, err)
			}
		}
	case reflect.Map:
		keys, err := sortedMapKeys(rv)
		if err != nil {
			return err
		}
		e.WriteUvarint(uint64(len(keys)))
		for _, k := range keys {
			if err := e.encodeReflect(reg, k); err != nil {
				return fmt.Errorf("map key %v: %w", k, err)
			}
			if err := e.encodeReflect(reg, rv.MapIndex(k)); err != nil {
				return fmt.Errorf("map[%v]: %w", k, err)
			}
		}
	case reflect.Struct:
		t := rv.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() || f.Tag.Get("obiwan") == "-" {
				continue
			}
			if err := e.encodeReflect(reg, rv.Field(i)); err != nil {
				return fmt.Errorf("field %s: %w", f.Name, err)
			}
		}
	case reflect.Interface:
		if rv.IsNil() {
			return e.Value(reg, nil)
		}
		return e.Value(reg, rv.Interface())
	default:
		return fmt.Errorf("codec: unsupported kind %v", rv.Kind())
	}
	return nil
}

// decodeReflect decodes into rv, which must be addressable.
func (d *Decoder) decodeReflect(reg *Registry, rv reflect.Value) error {
	if rv.Kind() == reflect.Pointer {
		present, err := d.ReadBool()
		if err != nil {
			return err
		}
		if !present {
			rv.SetZero()
			return nil
		}
		pv := reflect.New(rv.Type().Elem())
		if err := d.decodeReflect(reg, pv.Elem()); err != nil {
			return err
		}
		rv.Set(pv)
		return nil
	}
	if u, ok := asUnmarshaler(rv); ok {
		return u.UnmarshalOBI(d)
	}
	if rv.Type() == timeType {
		ns, err := d.ReadVarint()
		if err != nil {
			return err
		}
		rv.Set(reflect.ValueOf(time.Unix(0, ns)))
		return nil
	}
	switch rv.Kind() {
	case reflect.Bool:
		b, err := d.ReadBool()
		if err != nil {
			return err
		}
		rv.SetBool(b)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v, err := d.ReadVarint()
		if err != nil {
			return err
		}
		if rv.OverflowInt(v) {
			return fmt.Errorf("%w: int overflow %d into %v", ErrCorrupt, v, rv.Type())
		}
		rv.SetInt(v)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		v, err := d.ReadUvarint()
		if err != nil {
			return err
		}
		if rv.OverflowUint(v) {
			return fmt.Errorf("%w: uint overflow %d into %v", ErrCorrupt, v, rv.Type())
		}
		rv.SetUint(v)
	case reflect.Float32, reflect.Float64:
		v, err := d.ReadFloat64()
		if err != nil {
			return err
		}
		rv.SetFloat(v)
	case reflect.String:
		s, err := d.ReadString()
		if err != nil {
			return err
		}
		rv.SetString(s)
	case reflect.Slice:
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			b, err := d.ReadBytes()
			if err != nil {
				return err
			}
			rv.SetBytes(b)
			return nil
		}
		n, err := d.countedLen()
		if err != nil {
			return err
		}
		out := reflect.MakeSlice(rv.Type(), n, n)
		for i := 0; i < n; i++ {
			if err := d.decodeReflect(reg, out.Index(i)); err != nil {
				return fmt.Errorf("[%d]: %w", i, err)
			}
		}
		rv.Set(out)
	case reflect.Array:
		for i := 0; i < rv.Len(); i++ {
			if err := d.decodeReflect(reg, rv.Index(i)); err != nil {
				return fmt.Errorf("[%d]: %w", i, err)
			}
		}
	case reflect.Map:
		if !supportedMapKey(rv.Type().Key().Kind()) {
			return fmt.Errorf("codec: unsupported map key type %v", rv.Type().Key())
		}
		n, err := d.countedLen()
		if err != nil {
			return err
		}
		out := reflect.MakeMapWithSize(rv.Type(), n)
		for i := 0; i < n; i++ {
			kv := reflect.New(rv.Type().Key()).Elem()
			if err := d.decodeReflect(reg, kv); err != nil {
				return fmt.Errorf("map key %d: %w", i, err)
			}
			ev := reflect.New(rv.Type().Elem()).Elem()
			if err := d.decodeReflect(reg, ev); err != nil {
				return fmt.Errorf("map[%v]: %w", kv, err)
			}
			out.SetMapIndex(kv, ev)
		}
		rv.Set(out)
	case reflect.Struct:
		t := rv.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() || f.Tag.Get("obiwan") == "-" {
				continue
			}
			if err := d.decodeReflect(reg, rv.Field(i)); err != nil {
				return fmt.Errorf("field %s: %w", f.Name, err)
			}
		}
	case reflect.Interface:
		v, err := d.Value(reg)
		if err != nil {
			return err
		}
		if v == nil {
			rv.SetZero()
			return nil
		}
		vv := reflect.ValueOf(v)
		if !vv.Type().AssignableTo(rv.Type()) {
			return fmt.Errorf("%w: %v not assignable to %v", ErrTypeMismatch, vv.Type(), rv.Type())
		}
		rv.Set(vv)
	default:
		return fmt.Errorf("codec: unsupported kind %v", rv.Kind())
	}
	return nil
}

// supportedMapKey reports whether a map key kind has a deterministic wire
// order.
func supportedMapKey(k reflect.Kind) bool {
	switch k {
	case reflect.String,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return true
	default:
		return false
	}
}

// sortedMapKeys returns rv's keys in deterministic order (strings
// lexicographic, integers numeric).
func sortedMapKeys(rv reflect.Value) ([]reflect.Value, error) {
	kind := rv.Type().Key().Kind()
	if !supportedMapKey(kind) {
		return nil, fmt.Errorf("codec: unsupported map key type %v", rv.Type().Key())
	}
	keys := rv.MapKeys()
	var less func(a, b reflect.Value) bool
	switch {
	case kind == reflect.String:
		less = func(a, b reflect.Value) bool { return a.String() < b.String() }
	case kind >= reflect.Int && kind <= reflect.Int64:
		less = func(a, b reflect.Value) bool { return a.Int() < b.Int() }
	default:
		less = func(a, b reflect.Value) bool { return a.Uint() < b.Uint() }
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && less(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys, nil
}

func asMarshaler(rv reflect.Value) (Marshaler, bool) {
	if rv.Type().Implements(marshalerType) {
		if rv.Kind() == reflect.Pointer && rv.IsNil() {
			return nil, false
		}
		return rv.Interface().(Marshaler), true
	}
	if rv.CanAddr() && rv.Addr().Type().Implements(marshalerType) {
		return rv.Addr().Interface().(Marshaler), true
	}
	return nil, false
}

func asUnmarshaler(rv reflect.Value) (Unmarshaler, bool) {
	if rv.CanAddr() && rv.Addr().Type().Implements(unmarshalerType) {
		return rv.Addr().Interface().(Unmarshaler), true
	}
	return nil, false
}
