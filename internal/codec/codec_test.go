package codec

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.WriteUvarint(0)
	e.WriteUvarint(math.MaxUint64)
	e.WriteVarint(-1)
	e.WriteVarint(math.MinInt64)
	e.WriteVarint(math.MaxInt64)
	e.WriteBool(true)
	e.WriteBool(false)
	e.WriteFloat64(math.Pi)
	e.WriteString("héllo, world")
	e.WriteBytes([]byte{0, 1, 2, 255})
	e.WriteBytes(nil)

	d := NewDecoder(e.Bytes())
	if v, err := d.ReadUvarint(); err != nil || v != 0 {
		t.Fatalf("uvarint 0: got %d, %v", v, err)
	}
	if v, err := d.ReadUvarint(); err != nil || v != math.MaxUint64 {
		t.Fatalf("uvarint max: got %d, %v", v, err)
	}
	if v, err := d.ReadVarint(); err != nil || v != -1 {
		t.Fatalf("varint -1: got %d, %v", v, err)
	}
	if v, err := d.ReadVarint(); err != nil || v != math.MinInt64 {
		t.Fatalf("varint min: got %d, %v", v, err)
	}
	if v, err := d.ReadVarint(); err != nil || v != math.MaxInt64 {
		t.Fatalf("varint max: got %d, %v", v, err)
	}
	if v, err := d.ReadBool(); err != nil || !v {
		t.Fatalf("bool true: got %v, %v", v, err)
	}
	if v, err := d.ReadBool(); err != nil || v {
		t.Fatalf("bool false: got %v, %v", v, err)
	}
	if v, err := d.ReadFloat64(); err != nil || v != math.Pi {
		t.Fatalf("float: got %v, %v", v, err)
	}
	if v, err := d.ReadString(); err != nil || v != "héllo, world" {
		t.Fatalf("string: got %q, %v", v, err)
	}
	if v, err := d.ReadBytes(); err != nil || string(v) != "\x00\x01\x02\xff" {
		t.Fatalf("bytes: got %v, %v", v, err)
	}
	if v, err := d.ReadBytes(); err != nil || len(v) != 0 {
		t.Fatalf("nil bytes: got %v, %v", v, err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining %d bytes after full decode", d.Remaining())
	}
}

func TestDecodeTruncated(t *testing.T) {
	e := NewEncoder(0)
	e.WriteString("truncate me please")
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		if _, err := d.ReadString(); err == nil {
			t.Fatalf("cut=%d: expected error on truncated input", cut)
		}
	}
}

func TestDecodeCorruptLength(t *testing.T) {
	// Length prefix claims 1000 bytes but only a few follow.
	e := NewEncoder(0)
	e.WriteUvarint(1000)
	e.WriteRaw([]byte("short"))
	d := NewDecoder(e.Bytes())
	if _, err := d.ReadBytes(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected ErrCorrupt, got %v", err)
	}
}

func TestReadBoolRejectsJunk(t *testing.T) {
	d := NewDecoder([]byte{7})
	if _, err := d.ReadBool(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected ErrCorrupt, got %v", err)
	}
}

func TestValueRoundTripScalars(t *testing.T) {
	reg := NewRegistry()
	cases := []any{
		nil,
		true,
		false,
		int64(-42),
		uint64(42),
		float64(2.5),
		"str",
		[]byte("bytes"),
		[]any{int64(1), "two", nil},
		map[string]any{"a": int64(1), "b": "two"},
	}
	for _, want := range cases {
		e := NewEncoder(0)
		if err := e.Value(reg, want); err != nil {
			t.Fatalf("encode %#v: %v", want, err)
		}
		d := NewDecoder(e.Bytes())
		got, err := d.Value(reg)
		if err != nil {
			t.Fatalf("decode %#v: %v", want, err)
		}
		if !valueEqual(got, want) {
			t.Fatalf("round trip mismatch: got %#v want %#v", got, want)
		}
	}
}

func TestValueNormalizesIntKinds(t *testing.T) {
	reg := NewRegistry()
	e := NewEncoder(0)
	if err := e.Value(reg, int32(-7)); err != nil {
		t.Fatal(err)
	}
	if err := e.Value(reg, uint8(7)); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(e.Bytes())
	v1, err := d.Value(reg)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != int64(-7) {
		t.Fatalf("int32 should decode as int64(-7), got %#v", v1)
	}
	v2, err := d.Value(reg)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != uint64(7) {
		t.Fatalf("uint8 should decode as uint64(7), got %#v", v2)
	}
}

type wirePoint struct {
	X, Y    int
	Label   string
	Tags    []string
	Props   map[string]any
	hidden  int    // unexported: must be skipped
	Skipped string `obiwan:"-"`
}

func TestNamedStructRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister("test.point", wirePoint{})
	want := &wirePoint{
		X: 3, Y: -4, Label: "p",
		Tags:    []string{"a", "b"},
		Props:   map[string]any{"k": int64(9)},
		hidden:  99,
		Skipped: "do not ship",
	}
	e := NewEncoder(0)
	if err := e.Value(reg, want); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(e.Bytes())
	got, err := d.Value(reg)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := got.(*wirePoint)
	if !ok {
		t.Fatalf("decoded %T, want *wirePoint", got)
	}
	if p.X != 3 || p.Y != -4 || p.Label != "p" || len(p.Tags) != 2 || p.Tags[1] != "b" {
		t.Fatalf("bad decode: %+v", p)
	}
	if p.hidden != 0 || p.Skipped != "" {
		t.Fatalf("unexported/skipped fields must not travel: %+v", p)
	}
	if p.Props["k"] != int64(9) {
		t.Fatalf("props: %+v", p.Props)
	}
}

func TestValueUnknownTypeRejected(t *testing.T) {
	reg := NewRegistry()
	e := NewEncoder(0)
	err := e.Value(reg, struct{ Z int }{1})
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("expected not-registered error, got %v", err)
	}
}

func TestDecodeUnknownNameRejected(t *testing.T) {
	src := NewRegistry()
	src.MustRegister("test.point", wirePoint{})
	e := NewEncoder(0)
	if err := e.Value(src, &wirePoint{X: 1}); err != nil {
		t.Fatal(err)
	}
	dst := NewRegistry() // does not know test.point
	d := NewDecoder(e.Bytes())
	if _, err := d.Value(dst); err == nil {
		t.Fatal("expected unknown wire type error")
	}
}

func TestRegistryRebindRejected(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("n", wirePoint{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("n", wirePoint{}); err != nil {
		t.Fatalf("idempotent re-register must succeed: %v", err)
	}
	if err := reg.Register("n", struct{ A int }{}); err == nil {
		t.Fatal("rebinding a name to a new type must fail")
	}
	if err := reg.Register("other", wirePoint{}); err == nil {
		t.Fatal("rebinding a type to a new name must fail")
	}
}

type nested struct {
	Name string
	Next *nested
	Data []byte
	Arr  [3]uint16
}

func TestPointerChainRoundTrip(t *testing.T) {
	reg := NewRegistry()
	want := &nested{
		Name: "a",
		Next: &nested{Name: "b", Next: nil, Arr: [3]uint16{1, 2, 3}},
		Data: []byte{9},
	}
	e := NewEncoder(0)
	if err := e.EncodeStruct(reg, want); err != nil {
		t.Fatal(err)
	}
	var got nested
	if err := NewDecoder(e.Bytes()).DecodeStruct(reg, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "a" || got.Next == nil || got.Next.Name != "b" || got.Next.Next != nil {
		t.Fatalf("bad decode: %+v", got)
	}
	if got.Next.Arr != [3]uint16{1, 2, 3} {
		t.Fatalf("array: %+v", got.Next.Arr)
	}
}

type customWire struct {
	N int
}

func (c customWire) MarshalOBI(e *Encoder) error {
	e.WriteVarint(int64(c.N) * 2) // deliberately non-default form
	return nil
}

func (c *customWire) UnmarshalOBI(d *Decoder) error {
	v, err := d.ReadVarint()
	if err != nil {
		return err
	}
	c.N = int(v / 2)
	return nil
}

func TestMarshalerOverridesReflection(t *testing.T) {
	reg := NewRegistry()
	type holder struct{ C customWire }
	e := NewEncoder(0)
	if err := e.EncodeStruct(reg, holder{C: customWire{N: 21}}); err != nil {
		t.Fatal(err)
	}
	var got holder
	if err := NewDecoder(e.Bytes()).DecodeStruct(reg, &got); err != nil {
		t.Fatal(err)
	}
	if got.C.N != 21 {
		t.Fatalf("custom marshaler round trip: got %d", got.C.N)
	}
}

// Property: every (string, bytes, int64, uint64) tuple survives a round trip.
func TestQuickPrimitiveRoundTrip(t *testing.T) {
	f := func(s string, b []byte, i int64, u uint64, fl float64, ok bool) bool {
		e := NewEncoder(0)
		e.WriteString(s)
		e.WriteBytes(b)
		e.WriteVarint(i)
		e.WriteUvarint(u)
		e.WriteFloat64(fl)
		e.WriteBool(ok)
		d := NewDecoder(e.Bytes())
		gs, err := d.ReadString()
		if err != nil || gs != s {
			return false
		}
		gb, err := d.ReadBytes()
		if err != nil || string(gb) != string(b) {
			return false
		}
		gi, err := d.ReadVarint()
		if err != nil || gi != i {
			return false
		}
		gu, err := d.ReadUvarint()
		if err != nil || gu != u {
			return false
		}
		gf, err := d.ReadFloat64()
		if err != nil || (gf != fl && !(math.IsNaN(gf) && math.IsNaN(fl))) {
			return false
		}
		gk, err := d.ReadBool()
		return err == nil && gk == ok && d.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics and never over-reads on arbitrary junk.
func TestQuickDecoderRobustness(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister("test.point", wirePoint{})
	f := func(junk []byte) bool {
		d := NewDecoder(junk)
		// Errors are fine; panics or nonsensical offsets are not.
		_, _ = d.Value(reg)
		return d.Offset() <= len(junk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: struct round trip for randomly generated wirePoints.
func TestQuickStructRoundTrip(t *testing.T) {
	reg := NewRegistry()
	f := func(x, y int, label string, tags []string) bool {
		in := wirePoint{X: x, Y: y, Label: label, Tags: tags}
		e := NewEncoder(0)
		if err := e.EncodeStruct(reg, in); err != nil {
			return false
		}
		var out wirePoint
		if err := NewDecoder(e.Bytes()).DecodeStruct(reg, &out); err != nil {
			return false
		}
		if out.X != x || out.Y != y || out.Label != label || len(out.Tags) != len(tags) {
			return false
		}
		for i := range tags {
			if out.Tags[i] != tags[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func valueEqual(a, b any) bool {
	switch x := a.(type) {
	case []any:
		y, ok := b.([]any)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !valueEqual(x[i], y[i]) {
				return false
			}
		}
		return true
	case map[string]any:
		y, ok := b.(map[string]any)
		if !ok || len(x) != len(y) {
			return false
		}
		for k, v := range x {
			if !valueEqual(v, y[k]) {
				return false
			}
		}
		return true
	case []byte:
		y, ok := b.([]byte)
		return ok && string(x) == string(y)
	default:
		return a == b
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(16)
	e.WriteString("abc")
	if e.Len() == 0 {
		t.Fatal("expected non-empty buffer")
	}
	e.Reset()
	if e.Len() != 0 {
		t.Fatal("reset should empty buffer")
	}
	e.WriteString("xyz")
	d := NewDecoder(e.Bytes())
	s, err := d.ReadString()
	if err != nil || s != "xyz" {
		t.Fatalf("after reset: %q, %v", s, err)
	}
}

func TestRegistryNames(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister("b.type", wirePoint{})
	reg.MustRegister("a.type", nested{})
	names := reg.Names()
	if len(names) != 2 || names[0] != "a.type" || names[1] != "b.type" {
		t.Fatalf("names: %v", names)
	}
	if _, ok := reg.TypeOf("missing"); ok {
		t.Fatal("missing name should not resolve")
	}
	if name, ok := reg.NameOf(&wirePoint{}); !ok || name != "b.type" {
		t.Fatalf("NameOf pointer: %q %v", name, ok)
	}
}

type stamped struct {
	Label string
	At    time.Time
	Maybe *time.Time
}

func TestTimeRoundTrip(t *testing.T) {
	reg := NewRegistry()
	at := time.Date(2026, 7, 6, 12, 0, 0, 123456789, time.UTC)
	in := stamped{Label: "x", At: at, Maybe: &at}
	e := NewEncoder(0)
	if err := e.EncodeStruct(reg, in); err != nil {
		t.Fatal(err)
	}
	var out stamped
	if err := NewDecoder(e.Bytes()).DecodeStruct(reg, &out); err != nil {
		t.Fatal(err)
	}
	if !out.At.Equal(at) {
		t.Fatalf("time: %v want %v", out.At, at)
	}
	if out.Maybe == nil || !out.Maybe.Equal(at) {
		t.Fatalf("time ptr: %v", out.Maybe)
	}
	if out.Label != "x" {
		t.Fatalf("label: %q", out.Label)
	}
}

func TestZeroTimeSurvives(t *testing.T) {
	reg := NewRegistry()
	e := NewEncoder(0)
	if err := e.EncodeStruct(reg, stamped{}); err != nil {
		t.Fatal(err)
	}
	var out stamped
	if err := NewDecoder(e.Bytes()).DecodeStruct(reg, &out); err != nil {
		t.Fatal(err)
	}
	// UnixNano round-tripping does not preserve the zero Time's internal
	// form, but the instant must be stable across a double round trip.
	e2 := NewEncoder(0)
	if err := e2.EncodeStruct(reg, out); err != nil {
		t.Fatal(err)
	}
	var out2 stamped
	if err := NewDecoder(e2.Bytes()).DecodeStruct(reg, &out2); err != nil {
		t.Fatal(err)
	}
	if !out2.At.Equal(out.At) {
		t.Fatalf("instant drift: %v vs %v", out2.At, out.At)
	}
}

type intKeyed struct {
	ByID   map[int64]string
	ByCode map[uint16][]byte
}

func TestIntegerMapKeys(t *testing.T) {
	reg := NewRegistry()
	in := intKeyed{
		ByID:   map[int64]string{-3: "neg", 0: "zero", 9: "nine"},
		ByCode: map[uint16][]byte{7: {1}, 65535: {2}},
	}
	e := NewEncoder(0)
	if err := e.EncodeStruct(reg, in); err != nil {
		t.Fatal(err)
	}
	var out intKeyed
	if err := NewDecoder(e.Bytes()).DecodeStruct(reg, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.ByID) != 3 || out.ByID[-3] != "neg" || out.ByID[9] != "nine" {
		t.Fatalf("ByID: %v", out.ByID)
	}
	if len(out.ByCode) != 2 || string(out.ByCode[65535]) != "\x02" {
		t.Fatalf("ByCode: %v", out.ByCode)
	}
}

func TestIntegerMapDeterministicEncoding(t *testing.T) {
	reg := NewRegistry()
	in := intKeyed{ByID: map[int64]string{5: "a", 1: "b", 3: "c", -9: "d"}}
	e1 := NewEncoder(0)
	if err := e1.EncodeStruct(reg, in); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		e2 := NewEncoder(0)
		if err := e2.EncodeStruct(reg, in); err != nil {
			t.Fatal(err)
		}
		if string(e1.Bytes()) != string(e2.Bytes()) {
			t.Fatal("map encoding must be deterministic")
		}
	}
}

func TestUnsupportedMapKeyRejected(t *testing.T) {
	reg := NewRegistry()
	type bad struct {
		M map[float64]string
	}
	e := NewEncoder(0)
	if err := e.EncodeStruct(reg, bad{M: map[float64]string{1.5: "x"}}); err == nil {
		t.Fatal("float map keys must be rejected")
	}
}

func TestWriteByteAndReadRaw(t *testing.T) {
	e := NewEncoder(-1) // negative hint clamps to zero
	if err := e.WriteByte(0xAB); err != nil {
		t.Fatal(err)
	}
	e.WriteRaw([]byte{1, 2, 3})
	d := NewDecoder(e.Bytes())
	b, err := d.ReadByte()
	if err != nil || b != 0xAB {
		t.Fatalf("byte: %x %v", b, err)
	}
	raw, err := d.ReadRaw(3)
	if err != nil || string(raw) != "\x01\x02\x03" {
		t.Fatalf("raw: %v %v", raw, err)
	}
	if _, err := d.ReadRaw(1); err == nil {
		t.Fatal("raw past end must fail")
	}
	if _, err := d.ReadRaw(-1); err == nil {
		t.Fatal("negative raw must fail")
	}
}

func TestDefaultRegistryHelpers(t *testing.T) {
	// Package-level Register/MustRegister hit the process-wide registry.
	type defRegProbe struct{ A int }
	if err := Register("codec_test.defreg", defRegProbe{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := DefaultRegistry().TypeOf("codec_test.defreg"); !ok {
		t.Fatal("default registry lookup")
	}
	MustRegister("codec_test.defreg", defRegProbe{}) // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister must panic on rebind")
		}
	}()
	MustRegister("codec_test.defreg", struct{ B string }{})
}

func TestValueEncodesAllIntKinds(t *testing.T) {
	reg := NewRegistry()
	e := NewEncoder(0)
	inputs := []any{
		int(1), int8(2), int16(3), int32(4), int64(5),
		uint(6), uint8(7), uint16(8), uint32(9), uint64(10), uintptr(11),
		float32(1.5),
	}
	for _, v := range inputs {
		if err := e.Value(reg, v); err != nil {
			t.Fatalf("encode %T: %v", v, err)
		}
	}
	d := NewDecoder(e.Bytes())
	wants := []any{
		int64(1), int64(2), int64(3), int64(4), int64(5),
		uint64(6), uint64(7), uint64(8), uint64(9), uint64(10), uint64(11),
		float64(1.5),
	}
	for i, want := range wants {
		got, err := d.Value(reg)
		if err != nil || got != want {
			t.Fatalf("value %d: got %#v want %#v (%v)", i, got, want, err)
		}
	}
}

func TestValueTypedSliceAndMapFallback(t *testing.T) {
	reg := NewRegistry()
	e := NewEncoder(0)
	if err := e.Value(reg, []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Value(reg, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(e.Bytes())
	s, err := d.Value(reg)
	if err != nil {
		t.Fatal(err)
	}
	sl, ok := s.([]any)
	if !ok || len(sl) != 2 || sl[0] != "x" {
		t.Fatalf("typed slice: %#v", s)
	}
	m, err := d.Value(reg)
	if err != nil {
		t.Fatal(err)
	}
	mm, ok := m.(map[string]any)
	if !ok || mm["a"] != int64(1) {
		t.Fatalf("typed map: %#v", m)
	}
}

func TestValueNilRegisteredPointerRejected(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister("codec_test.nilptr", wirePoint{})
	e := NewEncoder(0)
	if err := e.Value(reg, (*wirePoint)(nil)); err == nil {
		t.Fatal("nil registered pointer must be rejected")
	}
}
