package codec

import "testing"

// FuzzDecodeValue checks that the self-describing decoder never panics or
// over-reads on arbitrary input. Run with `go test -fuzz=FuzzDecodeValue`;
// in normal test runs the seed corpus executes.
func FuzzDecodeValue(f *testing.F) {
	reg := NewRegistry()
	reg.MustRegister("fuzz.point", wirePoint{})

	// Seeds: one valid encoding of each tag plus structural junk.
	seed := func(build func(e *Encoder)) {
		e := NewEncoder(0)
		build(e)
		f.Add(e.Bytes())
	}
	seed(func(e *Encoder) { _ = e.Value(reg, nil) })
	seed(func(e *Encoder) { _ = e.Value(reg, true) })
	seed(func(e *Encoder) { _ = e.Value(reg, int64(-42)) })
	seed(func(e *Encoder) { _ = e.Value(reg, uint64(42)) })
	seed(func(e *Encoder) { _ = e.Value(reg, 3.14) })
	seed(func(e *Encoder) { _ = e.Value(reg, "hello") })
	seed(func(e *Encoder) { _ = e.Value(reg, []byte{1, 2, 3}) })
	seed(func(e *Encoder) { _ = e.Value(reg, []any{int64(1), "two"}) })
	seed(func(e *Encoder) { _ = e.Value(reg, map[string]any{"k": int64(1)}) })
	seed(func(e *Encoder) { _ = e.Value(reg, &wirePoint{X: 1, Tags: []string{"t"}}) })
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Add([]byte{tagNamed, 0x04, 'f', 'u', 'z', 'z'})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_, _ = d.Value(reg)
		if d.Offset() > len(data) {
			t.Fatalf("decoder over-read: offset %d > len %d", d.Offset(), len(data))
		}
	})
}

// FuzzDecodeStruct fuzzes the type-directed decoder against the wirePoint
// layout.
func FuzzDecodeStruct(f *testing.F) {
	reg := NewRegistry()
	e := NewEncoder(0)
	_ = e.EncodeStruct(reg, wirePoint{X: 1, Y: 2, Label: "p", Tags: []string{"a"}})
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x80, 0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		var out wirePoint
		_ = NewDecoder(data).DecodeStruct(reg, &out)
	})
}
