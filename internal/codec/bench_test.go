package codec

import (
	"fmt"
	"testing"
)

// benchRecord approximates a replication ObjectRecord's shape.
type benchRecord struct {
	OID      uint64
	TypeName string
	Version  uint64
	State    []byte
}

func BenchmarkEncodeStruct(b *testing.B) {
	reg := NewRegistry()
	for _, size := range []int{64, 1024, 16 * 1024} {
		b.Run(fmt.Sprintf("state=%dB", size), func(b *testing.B) {
			rec := benchRecord{OID: 42, TypeName: "bench.record", Version: 7, State: make([]byte, size)}
			b.ReportAllocs()
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				e := NewEncoder(size + 64)
				if err := e.EncodeStruct(reg, rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecodeStruct(b *testing.B) {
	reg := NewRegistry()
	for _, size := range []int{64, 1024, 16 * 1024} {
		b.Run(fmt.Sprintf("state=%dB", size), func(b *testing.B) {
			rec := benchRecord{OID: 42, TypeName: "bench.record", Version: 7, State: make([]byte, size)}
			e := NewEncoder(size + 64)
			if err := e.EncodeStruct(reg, rec); err != nil {
				b.Fatal(err)
			}
			buf := e.Bytes()
			b.ReportAllocs()
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				var out benchRecord
				if err := NewDecoder(buf).DecodeStruct(reg, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkValueRoundTripCallFrame(b *testing.B) {
	// The shape of an RMI call frame's argument vector.
	reg := NewRegistry()
	args := []any{int64(7), "MethodName", []byte("payload-ish"), true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEncoder(64)
		for _, a := range args {
			if err := e.Value(reg, a); err != nil {
				b.Fatal(err)
			}
		}
		d := NewDecoder(e.Bytes())
		for range args {
			if _, err := d.Value(reg); err != nil {
				b.Fatal(err)
			}
		}
	}
}
