package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplayFrames drives the record parser over arbitrary byte streams —
// the torn and bit-flipped logs a crashed site wakes up to. Mirroring the
// codec's self-describing decode fuzzers, it asserts the structural
// invariants replay promises:
//
//   - never panic, never over-read;
//   - the good prefix is a fixed point: re-parsing buf[:goodLen] yields
//     the same records and is itself fully good;
//   - re-framing the recovered records reproduces the good prefix
//     byte-for-byte.
func FuzzReplayFrames(f *testing.F) {
	// Seeds: a clean stream, a truncated tail, a flipped CRC, a flipped
	// payload bit, a huge length prefix, and junk.
	clean := AppendFrame(nil, []byte("alpha"))
	clean = AppendFrame(clean, []byte("beta"))
	clean = AppendFrame(clean, nil)
	f.Add(clean)
	f.Add(clean[:len(clean)-3])
	flippedCRC := bytes.Clone(clean)
	flippedCRC[4] ^= 1
	f.Add(flippedCRC)
	flippedPayload := bytes.Clone(clean)
	flippedPayload[frameHeader] ^= 0x80
	f.Add(flippedPayload)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 'x'})
	f.Add([]byte("short"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		records, good := ReplayFrames(data)
		if good < 0 || good > len(data) {
			t.Fatalf("goodLen %d out of range [0,%d]", good, len(data))
		}
		again, againGood := ReplayFrames(data[:good])
		if againGood != good || len(again) != len(records) {
			t.Fatalf("good prefix not a fixed point: %d/%d records, %d/%d bytes",
				len(again), len(records), againGood, good)
		}
		var rebuilt []byte
		for i, r := range records {
			if !bytes.Equal(again[i], r) {
				t.Fatalf("record %d differs on re-parse", i)
			}
			rebuilt = AppendFrame(rebuilt, r)
		}
		if !bytes.Equal(rebuilt, data[:good]) {
			t.Fatalf("re-framing %d records does not reproduce the good prefix", len(records))
		}
	})
}

// FuzzOpenLog feeds arbitrary bytes in as a wal.log body (after the magic
// header) and checks Open survives, truncates the torn tail, and leaves
// the directory appendable.
func FuzzOpenLog(f *testing.F) {
	valid := AppendFrame(nil, []byte("seed-record"))
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, body []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), append([]byte(logMagic), body...), 0o644); err != nil {
			t.Fatal(err)
		}
		s, rec, err := Open(dir)
		if err != nil {
			t.Fatalf("open on fuzzed log: %v", err)
		}
		wantRecords, wantGood := ReplayFrames(body)
		if len(rec.Log) != len(wantRecords) || rec.DiscardedTail != len(body)-wantGood {
			t.Fatalf("open recovered %d records (%d discarded), replay says %d (%d)",
				len(rec.Log), rec.DiscardedTail, len(wantRecords), len(body)-wantGood)
		}
		if err := s.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
