package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string) (*Store, *Recovered) {
	t.Helper()
	s, rec, err := Open(dir)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return s, rec
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec := openT(t, dir)
	if len(rec.Records()) != 0 {
		t.Fatalf("fresh dir recovered %d records", len(rec.Records()))
	}
	want := [][]byte{[]byte("one"), []byte("two"), {}, []byte("four")}
	for _, r := range want {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2 := openT(t, dir)
	defer s2.Close()
	got := rec2.Records()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
	if rec2.DiscardedTail != 0 {
		t.Fatalf("clean log discarded %d bytes", rec2.DiscardedTail)
	}
}

func TestIncarnationBumpsPerOpen(t *testing.T) {
	dir := t.TempDir()
	var last uint64
	for i := 1; i <= 3; i++ {
		s, _ := openT(t, dir)
		if s.Incarnation() <= last {
			t.Fatalf("open %d: incarnation %d not greater than %d", i, s.Incarnation(), last)
		}
		last = s.Incarnation()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if last != 3 {
		t.Fatalf("third open incarnation %d, want 3", last)
	}
}

func TestBindSiteID(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	if s.SiteID() != 0 {
		t.Fatalf("fresh dir has site id %d", s.SiteID())
	}
	if err := s.BindSiteID(42); err != nil {
		t.Fatal(err)
	}
	if err := s.BindSiteID(42); err != nil {
		t.Fatalf("rebinding same id: %v", err)
	}
	if err := s.BindSiteID(7); !errors.Is(err, ErrSiteIDMismatch) {
		t.Fatalf("want ErrSiteIDMismatch, got %v", err)
	}
	s.Close()

	s2, _ := openT(t, dir)
	defer s2.Close()
	if s2.SiteID() != 42 {
		t.Fatalf("site id not persisted: %d", s2.SiteID())
	}
	if err := s2.BindSiteID(7); !errors.Is(err, ErrSiteIDMismatch) {
		t.Fatalf("want ErrSiteIDMismatch after reopen, got %v", err)
	}
}

// TestTornTail truncates the log mid-record at every possible byte
// boundary of the final record and checks replay keeps the prefix and
// discards the tail without error.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	if err := s.Append([]byte("keep-me")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("torn-record-payload")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	logPath := filepath.Join(dir, logName)
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	firstEnd := len(logMagic) + frameHeader + len("keep-me")
	for cut := firstEnd + 1; cut < len(full); cut++ {
		if err := os.WriteFile(logPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, rec := openT(t, dir)
		if len(rec.Log) != 1 || string(rec.Log[0]) != "keep-me" {
			t.Fatalf("cut %d: recovered %q", cut, rec.Log)
		}
		if rec.DiscardedTail != cut-firstEnd {
			t.Fatalf("cut %d: discarded %d, want %d", cut, rec.DiscardedTail, cut-firstEnd)
		}
		// The torn bytes must be gone: appending then replaying again
		// yields exactly keep-me + the new record.
		if err := s2.Append([]byte("after")); err != nil {
			t.Fatal(err)
		}
		s2.Close()
		s3, rec3 := openT(t, dir)
		if len(rec3.Log) != 2 || string(rec3.Log[1]) != "after" {
			t.Fatalf("cut %d: post-truncate replay %q", cut, rec3.Log)
		}
		s3.Close()
		// Restore the full log for the next cut.
		if err := os.WriteFile(logPath, full, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBitFlipDiscardsTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	for i := 0; i < 3; i++ {
		if err := s.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	logPath := filepath.Join(dir, logName)
	raw, _ := os.ReadFile(logPath)
	// Flip a bit inside the second record's payload: replay keeps record 0
	// and discards records 1 and 2 (append-only logs cannot trust anything
	// after the first bad frame).
	recLen := frameHeader + len("record-0")
	raw[len(logMagic)+recLen+frameHeader+2] ^= 0x40
	if err := os.WriteFile(logPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, rec := openT(t, dir)
	defer s2.Close()
	if len(rec.Log) != 1 || string(rec.Log[0]) != "record-0" {
		t.Fatalf("recovered %q, want only record-0", rec.Log)
	}
	if rec.DiscardedTail == 0 {
		t.Fatal("no tail discarded")
	}
}

func TestCompactSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	for i := 0; i < 10; i++ {
		if err := s.Append([]byte(fmt.Sprintf("log-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	before := s.LogSize()
	if err := s.Compact([][]byte{[]byte("snap-a"), []byte("snap-b")}); err != nil {
		t.Fatal(err)
	}
	if s.LogSize() >= before {
		t.Fatalf("log not truncated: %d -> %d", before, s.LogSize())
	}
	if err := s.Append([]byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, rec := openT(t, dir)
	defer s2.Close()
	if want := [][]byte{[]byte("snap-a"), []byte("snap-b")}; len(rec.Snapshot) != 2 ||
		!bytes.Equal(rec.Snapshot[0], want[0]) || !bytes.Equal(rec.Snapshot[1], want[1]) {
		t.Fatalf("snapshot %q", rec.Snapshot)
	}
	if len(rec.Log) != 1 || string(rec.Log[0]) != "post-compact" {
		t.Fatalf("log after compact %q", rec.Log)
	}
}

func TestConcurrentAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := s.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Close()

	s2, rec := openT(t, dir)
	defer s2.Close()
	if len(rec.Log) != writers*per {
		t.Fatalf("recovered %d records, want %d", len(rec.Log), writers*per)
	}
	if rec.DiscardedTail != 0 {
		t.Fatalf("concurrent appends interleaved corruptly: %d bytes discarded", rec.DiscardedTail)
	}
}

func TestCloseIdempotentAndAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := s.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := s.Compact(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("compact after close: %v", err)
	}
}

func TestBadHeadersRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), []byte("NOTAWAL!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad log header: %v", err)
	}

	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, snapName), []byte("garbage-snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad snapshot header: %v", err)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	defer s.Close()
	if err := s.Append(make([]byte, MaxRecord+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append: %v", err)
	}
}
