// Package wal implements the durability substrate behind
// site.WithDurability: an append-only, CRC32C-framed, fsync-batched log
// plus a snapshot file and a small manifest, all living in one directory.
//
// The original OBIWAN prototype kept every site purely in memory — a
// crashed process lost its master heap, its bindings, and every dirty
// offline edit, stranding remote proxies forever. This package gives a
// site a redo log: the replication engine journals master mutations and
// replica-side dirty edits as opaque records; on restart the site replays
// the snapshot and then the log, rebuilds its heap, and resumes with a
// fresh, persisted incarnation number so peers never confuse the reborn
// site with its previous life.
//
// On-disk layout (per site directory):
//
//	manifest  — magic + incarnation counter + site id, replaced atomically
//	snapshot  — magic + framed records: the compacted state at compaction time
//	wal.log   — magic + framed records appended since the last compaction
//
// Record framing is self-delimiting and corruption-evident:
//
//	[length u32 LE][crc32c(payload) u32 LE][payload]
//
// Replay tolerates a torn tail: a final record whose header or payload is
// truncated, or whose CRC does not match, is discarded (along with
// everything after it) and the log is truncated back to the last good
// record — the expected outcome of power loss mid-append. The snapshot is
// written to a temporary file, fsynced, and renamed, so it is either the
// old one or the new one, never a torn hybrid.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"
)

const (
	logName      = "wal.log"
	snapName     = "snapshot"
	manifestName = "manifest"

	logMagic  = "OBIWAL1\n"
	snapMagic = "OBISNP1\n"
	manMagic  = "OBIMAN1\n"

	// frameHeader is the per-record overhead: u32 length + u32 CRC32C.
	frameHeader = 8
)

// MaxRecord bounds one record's payload; larger appends are rejected so a
// corrupt length prefix can never be mistaken for a real record either.
const MaxRecord = 64 << 20

// Errors returned by the store.
var (
	// ErrClosed is returned for operations on a closed store.
	ErrClosed = errors.New("wal: store closed")
	// ErrCorrupt is returned when a file's magic header or a snapshot
	// record is structurally invalid (torn log tails are NOT corrupt —
	// they are silently discarded).
	ErrCorrupt = errors.New("wal: corrupt")
	// ErrTooLarge is returned by Append for payloads over MaxRecord.
	ErrTooLarge = errors.New("wal: record too large")
	// ErrSiteIDMismatch is returned by BindSiteID when the directory
	// already belongs to a different site id.
	ErrSiteIDMismatch = errors.New("wal: site id mismatch")
)

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends one framed record to buf and returns the result.
func AppendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// ReplayFrames parses a framed record stream (the bytes after a file's
// magic header). It returns every complete, CRC-valid record and the
// offset at which the good prefix ends: goodLen == len(buf) for a clean
// stream, anything less marks a torn or corrupt tail that the caller
// should truncate away. ReplayFrames never fails — a broken tail is data
// loss already, not an error to surface.
func ReplayFrames(buf []byte) (records [][]byte, goodLen int) {
	off := 0
	for {
		if len(buf)-off < frameHeader {
			return records, off
		}
		n := int(binary.LittleEndian.Uint32(buf[off : off+4]))
		sum := binary.LittleEndian.Uint32(buf[off+4 : off+8])
		if n > MaxRecord || n > len(buf)-off-frameHeader {
			return records, off
		}
		payload := buf[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return records, off
		}
		rec := make([]byte, n)
		copy(rec, payload)
		records = append(records, rec)
		off += frameHeader + n
	}
}

// Recovered is what Open found on disk.
type Recovered struct {
	// Snapshot holds the records of the snapshot file, oldest first (nil
	// when no snapshot exists).
	Snapshot [][]byte
	// Log holds the records appended since the snapshot was taken.
	Log [][]byte
	// DiscardedTail is how many bytes of torn tail were dropped from the
	// log during replay (0 for a clean log).
	DiscardedTail int
}

// Records returns the full replay stream: snapshot records then log
// records.
func (r *Recovered) Records() [][]byte {
	out := make([][]byte, 0, len(r.Snapshot)+len(r.Log))
	out = append(out, r.Snapshot...)
	return append(out, r.Log...)
}

// Store is one site's durability directory. Appends are safe for
// concurrent use; concurrent appenders share fsyncs (group commit).
type Store struct {
	dir         string
	incarnation uint64

	mu     sync.Mutex // serializes writes, truncation, close
	f      *os.File
	size   int64 // log size including magic
	closed bool
	seq    uint64 // count of writes issued

	syncMu  sync.Mutex // group-commit: one fsync covers all queued writers
	syncSeq uint64     // writes covered by the last fsync
	syncObs func(wait, fsync time.Duration)

	manMu  sync.Mutex
	siteID uint64
}

// SetSyncObserver installs fn to be called after every group-commit
// round with the time the writer spent queued behind another writer's
// fsync (wait) and the duration of the fsync it issued itself (fsync,
// zero when a later writer's sync already covered it). Nil removes the
// observer. This keeps the wal package free of telemetry dependencies
// while letting the site layer feed its wal.fsync_ns and
// wal.fsync.wait_ns histograms. fn runs with the sync mutex held —
// keep it trivial.
func (s *Store) SetSyncObserver(fn func(wait, fsync time.Duration)) {
	s.syncMu.Lock()
	s.syncObs = fn
	s.syncMu.Unlock()
}

// Open opens (creating if needed) the durability directory at dir, bumps
// and persists the incarnation counter, and replays what is on disk. The
// returned store is positioned to append after the last good log record.
func Open(dir string) (*Store, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	s := &Store{dir: dir}

	inc, siteID, err := s.readManifest()
	if err != nil {
		return nil, nil, err
	}
	s.incarnation = inc + 1
	s.siteID = siteID
	if err := s.writeManifest(s.incarnation, siteID); err != nil {
		return nil, nil, err
	}

	rec := &Recovered{}
	if snap, err := os.ReadFile(filepath.Join(dir, snapName)); err == nil {
		if len(snap) < len(snapMagic) || string(snap[:len(snapMagic)]) != snapMagic {
			return nil, nil, fmt.Errorf("%w: bad snapshot header", ErrCorrupt)
		}
		records, good := ReplayFrames(snap[len(snapMagic):])
		if good != len(snap)-len(snapMagic) {
			// Snapshots are written atomically; a bad record means the
			// file was tampered with, not torn.
			return nil, nil, fmt.Errorf("%w: snapshot damaged at offset %d", ErrCorrupt, good)
		}
		rec.Snapshot = records
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}

	logPath := filepath.Join(dir, logName)
	f, err := os.OpenFile(logPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	raw, err := os.ReadFile(logPath)
	if err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	switch {
	case len(raw) == 0:
		if _, err := f.WriteString(logMagic); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("wal: init log: %w", err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("wal: init log: %w", err)
		}
		s.size = int64(len(logMagic))
	case len(raw) < len(logMagic) || string(raw[:len(logMagic)]) != logMagic:
		_ = f.Close()
		return nil, nil, fmt.Errorf("%w: bad log header", ErrCorrupt)
	default:
		records, good := ReplayFrames(raw[len(logMagic):])
		rec.Log = records
		rec.DiscardedTail = len(raw) - len(logMagic) - good
		s.size = int64(len(logMagic) + good)
		if rec.DiscardedTail > 0 {
			// Torn tail: truncate back to the last good record so the
			// next append starts on a frame boundary.
			if err := f.Truncate(s.size); err != nil {
				_ = f.Close()
				return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			if err := f.Sync(); err != nil {
				_ = f.Close()
				return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
		}
		if _, err := f.Seek(s.size, 0); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
	}
	s.f = f
	return s, rec, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Incarnation returns this opening's incarnation number (≥1, strictly
// increasing across Opens of the same directory).
func (s *Store) Incarnation() uint64 { return s.incarnation }

// SiteID returns the site id recorded in the manifest (0 until BindSiteID
// runs on a fresh directory).
func (s *Store) SiteID() uint16 {
	s.manMu.Lock()
	defer s.manMu.Unlock()
	return uint16(s.siteID)
}

// BindSiteID pins the directory to a site identity: the first call
// persists id; later Opens must bind the same id or fail, so a WAL can
// never replay into a heap that mints foreign OIDs.
func (s *Store) BindSiteID(id uint16) error {
	s.manMu.Lock()
	defer s.manMu.Unlock()
	if s.siteID == uint64(id) {
		return nil
	}
	if s.siteID != 0 {
		return fmt.Errorf("%w: directory belongs to site %d, not %d", ErrSiteIDMismatch, s.siteID, id)
	}
	s.siteID = uint64(id)
	return s.writeManifest(s.incarnation, s.siteID)
}

// readManifest loads (incarnation, siteID), defaulting to zeros when the
// manifest does not exist yet.
func (s *Store) readManifest() (inc, siteID uint64, err error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	if len(raw) < len(manMagic) || string(raw[:len(manMagic)]) != manMagic {
		return 0, 0, fmt.Errorf("%w: bad manifest header", ErrCorrupt)
	}
	rest := raw[len(manMagic):]
	inc, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: manifest incarnation", ErrCorrupt)
	}
	siteID, m := binary.Uvarint(rest[n:])
	if m <= 0 {
		return 0, 0, fmt.Errorf("%w: manifest site id", ErrCorrupt)
	}
	return inc, siteID, nil
}

// writeManifest atomically replaces the manifest.
func (s *Store) writeManifest(inc, siteID uint64) error {
	buf := []byte(manMagic)
	buf = binary.AppendUvarint(buf, inc)
	buf = binary.AppendUvarint(buf, siteID)
	return s.atomicWrite(manifestName, buf)
}

// atomicWrite writes name via a temp file + fsync + rename + dir fsync.
func (s *Store) atomicWrite(name string, data []byte) error {
	path := filepath.Join(s.dir, name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return s.syncDir()
}

// syncDir fsyncs the directory so renames and creations are durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// Append durably appends one record. It returns only after the record is
// fsynced; concurrent appenders coalesce into shared fsyncs (the group
// commit: the first writer to reach the sync mutex covers everything
// written before it looked).
func (s *Store) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	frame := AppendFrame(nil, payload)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	_, err := s.f.Write(frame)
	if err == nil {
		s.size += int64(len(frame))
		s.seq++
	}
	seq := s.seq
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	return s.syncTo(seq)
}

// syncTo ensures every write up to seq is fsynced, sharing the fsync with
// any other writer that got there first.
func (s *Store) syncTo(seq uint64) error {
	waitStart := time.Now()
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	wait := time.Since(waitStart)
	if s.syncSeq >= seq {
		if s.syncObs != nil {
			s.syncObs(wait, 0) // covered by a later writer's fsync: pure wait
		}
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	cur := s.seq
	f := s.f
	s.mu.Unlock()
	start := time.Now()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	if s.syncObs != nil {
		s.syncObs(wait, time.Since(start))
	}
	s.syncSeq = cur
	return nil
}

// LogSize returns the log's current size in bytes (magic included) —
// the compaction trigger input.
func (s *Store) LogSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Compact atomically replaces the snapshot with records and truncates the
// log. Crash-safe at every step: before the snapshot rename the old
// snapshot + full log recover; between the rename and the truncation the
// new snapshot plus the (now redundant, idempotent) log records recover.
// The caller must guarantee records reflect every append issued so far —
// hold off new appends while capturing them.
func (s *Store) Compact(records [][]byte) error {
	buf := []byte(snapMagic)
	for _, r := range records {
		if len(r) > MaxRecord {
			return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(r))
		}
		buf = AppendFrame(buf, r)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.atomicWrite(snapName, buf); err != nil {
		return err
	}
	if err := s.f.Truncate(int64(len(logMagic))); err != nil {
		return fmt.Errorf("wal: truncate log: %w", err)
	}
	if _, err := s.f.Seek(int64(len(logMagic)), 0); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	s.size = int64(len(logMagic))
	return nil
}

// Close flushes and closes the store. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// Abandon closes the store without a final flush — the crash-simulation
// exit used by chaos tests (Site.Kill). Records already fsynced by Append
// survive; nothing else is guaranteed.
func (s *Store) Abandon() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	_ = s.f.Close()
}
