// Package qos estimates link quality and implements the run-time decision
// the paper motivates: "the programmer has the means to make his
// application decide, in run-time, if an object should be invoked via RMI
// or if a local replica should be created ... given the significant and
// rapid changes in the quality of service of the underlying network" (§5).
//
// A Monitor ingests the round-trip observations the RMI runtime emits and
// keeps a per-peer EWMA of RTT plus a failure window. The Advisor turns
// those estimates into the ModeAuto crossover decision, using the cost
// model behind figure 4:
//
//	cost(RMI, n calls)  ≈ n · RTT
//	cost(LMI, n calls)  ≈ fetch + n · ε        (ε = local call ≪ RTT)
//
// Replication pays off once n · RTT exceeds the fetch cost — a ski-rental
// decision. Without knowing future n, the advisor replicates after the
// calls so far have spent about one fetch's worth of RTT (2-competitive).
// A disconnected or degraded link forces the local decision outright:
// offline work needs colocated objects.
package qos

import (
	"sync"
	"time"

	"obiwan/internal/objmodel"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// estimate is the per-peer link state.
type estimate struct {
	ewmaRTT  time.Duration
	samples  uint64
	failures uint64
	lastFail time.Time
	lastOK   time.Time
}

// Monitor aggregates RMI round-trip observations per peer site. Plug its
// Observe method into rmi.WithObserver. Safe for concurrent use.
type Monitor struct {
	mu    sync.Mutex
	peers map[transport.Addr]*estimate
	// alpha is the EWMA smoothing factor for new samples.
	alpha float64
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{peers: make(map[transport.Addr]*estimate), alpha: 0.3}
}

// Observe ingests one call outcome. Failed calls count as failures and do
// not update the RTT estimate (their duration reflects timeouts, not the
// link).
func (m *Monitor) Observe(addr transport.Addr, _ string, rtt time.Duration, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.peers[addr]
	if !ok {
		e = &estimate{}
		m.peers[addr] = e
	}
	now := time.Now()
	if err != nil {
		e.failures++
		e.lastFail = now
		return
	}
	e.lastOK = now
	e.samples++
	if e.ewmaRTT == 0 {
		e.ewmaRTT = rtt
		return
	}
	e.ewmaRTT = time.Duration((1-m.alpha)*float64(e.ewmaRTT) + m.alpha*float64(rtt))
}

// RTT returns the smoothed round-trip estimate for addr.
func (m *Monitor) RTT(addr transport.Addr) (time.Duration, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.peers[addr]
	if !ok || e.samples == 0 {
		return 0, false
	}
	return e.ewmaRTT, true
}

// Healthy reports whether the last outcome seen for addr was a success.
// An address never observed counts as healthy (optimism at bootstrap).
func (m *Monitor) Healthy(addr transport.Addr) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.peers[addr]
	if !ok {
		return true
	}
	return e.lastFail.IsZero() || e.lastOK.After(e.lastFail)
}

// Failures returns the failure count observed for addr.
func (m *Monitor) Failures(addr transport.Addr) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.peers[addr]; ok {
		return e.failures
	}
	return 0
}

// Advisor turns Monitor estimates into ModeAuto decisions for one peer
// site. Its Crossover method matches replication.Crossover.
type Advisor struct {
	monitor  *Monitor
	peer     transport.Addr
	profiler *telemetry.Profiler // nil without telemetry: factor fallback

	// FetchFactor is the estimated cost of one replication demand in units
	// of call RTTs (one RTT for the demand itself plus transfer time).
	// After calls · 1 ≥ FetchFactor the advisor prefers replication.
	// Default 2: replicate on the second call for small objects, the
	// ski-rental break-even of figure 4's small-object crossover. Used
	// when no measured fetch cost is available for the object.
	FetchFactor float64

	// MaxRemoteRTT forces the local decision when the link is slower than
	// this (0 = disabled): on very slow links even a single future call
	// amortizes the fetch.
	MaxRemoteRTT time.Duration
}

// NewAdvisor builds an advisor for the given peer site.
func NewAdvisor(m *Monitor, peer transport.Addr) *Advisor {
	return &Advisor{monitor: m, peer: peer, FetchFactor: 2}
}

// NewProfiledAdvisor builds an advisor that closes the loop with the
// site's replication profiler: instead of assuming a fetch costs
// FetchFactor RTTs, it uses the measured average demand latency for the
// object (or the site-wide average while the object is cold) as the
// ski-rental break-even. p may be nil, degrading to NewAdvisor behavior.
func NewProfiledAdvisor(m *Monitor, peer transport.Addr, p *telemetry.Profiler) *Advisor {
	a := NewAdvisor(m, peer)
	a.profiler = p
	return a
}

// Crossover implements the ModeAuto decision: true means "replicate now".
func (a *Advisor) Crossover(oid objmodel.OID, calls uint64) bool {
	// A dead link leaves replication as the only viable plan (and the
	// fault path is what will retry the fetch when connectivity returns).
	if !a.monitor.Healthy(a.peer) {
		return true
	}
	rtt, haveRTT := a.monitor.RTT(a.peer)
	if a.MaxRemoteRTT > 0 && haveRTT && rtt > a.MaxRemoteRTT {
		return true
	}
	// Measured path: replicate once the RTT already spent on this ref
	// matches the observed fetch cost — the 2-competitive ski-rental rule
	// with both sides of figure 4's cost model measured, not assumed.
	if haveRTT && rtt > 0 {
		if fetch, ok := a.profiler.FaultCost(uint64(oid)); ok && fetch > 0 {
			return time.Duration(calls)*rtt >= fetch
		}
	}
	return float64(calls) >= a.FetchFactor
}
