package qos

import (
	"errors"
	"testing"
	"time"

	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

const peer = transport.Addr("server")

func TestMonitorEWMA(t *testing.T) {
	m := NewMonitor()
	if _, ok := m.RTT(peer); ok {
		t.Fatal("no samples yet")
	}
	m.Observe(peer, "M", 10*time.Millisecond, nil)
	rtt, ok := m.RTT(peer)
	if !ok || rtt != 10*time.Millisecond {
		t.Fatalf("first sample: %v %v", rtt, ok)
	}
	// A faster sample pulls the estimate down, but not all the way.
	m.Observe(peer, "M", 2*time.Millisecond, nil)
	rtt, _ = m.RTT(peer)
	if rtt >= 10*time.Millisecond || rtt <= 2*time.Millisecond {
		t.Fatalf("ewma: %v", rtt)
	}
}

func TestMonitorHealthTracksLastOutcome(t *testing.T) {
	m := NewMonitor()
	if !m.Healthy(peer) {
		t.Fatal("unknown peers are optimistically healthy")
	}
	m.Observe(peer, "M", 5*time.Millisecond, nil)
	if !m.Healthy(peer) {
		t.Fatal("healthy after success")
	}
	m.Observe(peer, "M", 0, errors.New("link down"))
	if m.Healthy(peer) {
		t.Fatal("unhealthy after failure")
	}
	if m.Failures(peer) != 1 {
		t.Fatalf("failures: %d", m.Failures(peer))
	}
	time.Sleep(time.Millisecond)
	m.Observe(peer, "M", 5*time.Millisecond, nil)
	if !m.Healthy(peer) {
		t.Fatal("healthy again after recovery")
	}
}

func TestFailedCallsDoNotPolluteRTT(t *testing.T) {
	m := NewMonitor()
	m.Observe(peer, "M", 5*time.Millisecond, nil)
	m.Observe(peer, "M", 10*time.Second, errors.New("timeout"))
	rtt, _ := m.RTT(peer)
	if rtt != 5*time.Millisecond {
		t.Fatalf("rtt after failure: %v", rtt)
	}
}

func TestAdvisorSkiRental(t *testing.T) {
	m := NewMonitor()
	m.Observe(peer, "M", 3*time.Millisecond, nil)
	a := NewAdvisor(m, peer)
	if a.Crossover(1, 1) {
		t.Fatal("first call should stay remote")
	}
	if !a.Crossover(1, 2) {
		t.Fatal("second call should replicate (FetchFactor=2)")
	}
	a.FetchFactor = 5
	if a.Crossover(1, 4) {
		t.Fatal("below custom factor")
	}
	if !a.Crossover(1, 5) {
		t.Fatal("at custom factor")
	}
}

// TestProfiledAdvisorCrossoverFlips: with a measured fetch cost the
// advisor abandons the static factor and flips RMI→LMI exactly when the
// RTT spent so far reaches the observed demand latency.
func TestProfiledAdvisorCrossoverFlips(t *testing.T) {
	m := NewMonitor()
	m.Observe(peer, "M", 2*time.Millisecond, nil) // EWMA = 2ms exactly
	p := telemetry.NewProfiler(0)
	p.RecordFault(1, false, false, 4, 4096, 10*time.Millisecond)
	a := NewProfiledAdvisor(m, peer, p)

	// The static factor (2) would already replicate at call 2 — the
	// measured 10ms fetch holds the remote plan until 5 calls × 2ms RTT.
	if a.Crossover(1, 2) {
		t.Fatal("measured fetch cost should override the static factor")
	}
	if a.Crossover(1, 4) {
		t.Fatal("4 calls × 2ms < 10ms fetch: stay remote")
	}
	if !a.Crossover(1, 5) {
		t.Fatal("5 calls × 2ms ≥ 10ms fetch: replicate")
	}

	// An object never profiled borrows the site-wide demand average —
	// here the same 10ms, so the flip point matches.
	if a.Crossover(99, 4) || !a.Crossover(99, 5) {
		t.Fatal("site-wide fallback cost not applied")
	}

	// A dead link still forces the local plan regardless of the profile.
	m.Observe(peer, "M", 0, errors.New("down"))
	if !a.Crossover(1, 1) {
		t.Fatal("dead link must force the local plan")
	}
}

// TestProfiledAdvisorFallsBackWithoutData: nil profiler or an empty one
// degrades to the static ski-rental factor.
func TestProfiledAdvisorFallsBackWithoutData(t *testing.T) {
	m := NewMonitor()
	m.Observe(peer, "M", 2*time.Millisecond, nil)
	a := NewProfiledAdvisor(m, peer, nil)
	if a.Crossover(1, 1) || !a.Crossover(1, 2) {
		t.Fatal("nil profiler must behave like NewAdvisor")
	}
	b := NewProfiledAdvisor(m, peer, telemetry.NewProfiler(0))
	if b.Crossover(1, 1) || !b.Crossover(1, 2) {
		t.Fatal("empty profiler must behave like NewAdvisor")
	}
}

func TestAdvisorDeadLinkForcesLocal(t *testing.T) {
	m := NewMonitor()
	m.Observe(peer, "M", 0, errors.New("down"))
	a := NewAdvisor(m, peer)
	if !a.Crossover(1, 1) {
		t.Fatal("dead link must force the local plan")
	}
}

func TestAdvisorSlowLinkForcesLocal(t *testing.T) {
	m := NewMonitor()
	m.Observe(peer, "M", 400*time.Millisecond, nil)
	a := NewAdvisor(m, peer)
	a.MaxRemoteRTT = 100 * time.Millisecond
	if !a.Crossover(1, 1) {
		t.Fatal("slow link should replicate immediately")
	}
	a.MaxRemoteRTT = time.Second
	if a.Crossover(1, 1) {
		t.Fatal("fast-enough link stays remote on call 1")
	}
}
