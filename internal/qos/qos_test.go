package qos

import (
	"errors"
	"testing"
	"time"

	"obiwan/internal/transport"
)

const peer = transport.Addr("server")

func TestMonitorEWMA(t *testing.T) {
	m := NewMonitor()
	if _, ok := m.RTT(peer); ok {
		t.Fatal("no samples yet")
	}
	m.Observe(peer, "M", 10*time.Millisecond, nil)
	rtt, ok := m.RTT(peer)
	if !ok || rtt != 10*time.Millisecond {
		t.Fatalf("first sample: %v %v", rtt, ok)
	}
	// A faster sample pulls the estimate down, but not all the way.
	m.Observe(peer, "M", 2*time.Millisecond, nil)
	rtt, _ = m.RTT(peer)
	if rtt >= 10*time.Millisecond || rtt <= 2*time.Millisecond {
		t.Fatalf("ewma: %v", rtt)
	}
}

func TestMonitorHealthTracksLastOutcome(t *testing.T) {
	m := NewMonitor()
	if !m.Healthy(peer) {
		t.Fatal("unknown peers are optimistically healthy")
	}
	m.Observe(peer, "M", 5*time.Millisecond, nil)
	if !m.Healthy(peer) {
		t.Fatal("healthy after success")
	}
	m.Observe(peer, "M", 0, errors.New("link down"))
	if m.Healthy(peer) {
		t.Fatal("unhealthy after failure")
	}
	if m.Failures(peer) != 1 {
		t.Fatalf("failures: %d", m.Failures(peer))
	}
	time.Sleep(time.Millisecond)
	m.Observe(peer, "M", 5*time.Millisecond, nil)
	if !m.Healthy(peer) {
		t.Fatal("healthy again after recovery")
	}
}

func TestFailedCallsDoNotPolluteRTT(t *testing.T) {
	m := NewMonitor()
	m.Observe(peer, "M", 5*time.Millisecond, nil)
	m.Observe(peer, "M", 10*time.Second, errors.New("timeout"))
	rtt, _ := m.RTT(peer)
	if rtt != 5*time.Millisecond {
		t.Fatalf("rtt after failure: %v", rtt)
	}
}

func TestAdvisorSkiRental(t *testing.T) {
	m := NewMonitor()
	m.Observe(peer, "M", 3*time.Millisecond, nil)
	a := NewAdvisor(m, peer)
	if a.Crossover(1, 1) {
		t.Fatal("first call should stay remote")
	}
	if !a.Crossover(1, 2) {
		t.Fatal("second call should replicate (FetchFactor=2)")
	}
	a.FetchFactor = 5
	if a.Crossover(1, 4) {
		t.Fatal("below custom factor")
	}
	if !a.Crossover(1, 5) {
		t.Fatal("at custom factor")
	}
}

func TestAdvisorDeadLinkForcesLocal(t *testing.T) {
	m := NewMonitor()
	m.Observe(peer, "M", 0, errors.New("down"))
	a := NewAdvisor(m, peer)
	if !a.Crossover(1, 1) {
		t.Fatal("dead link must force the local plan")
	}
}

func TestAdvisorSlowLinkForcesLocal(t *testing.T) {
	m := NewMonitor()
	m.Observe(peer, "M", 400*time.Millisecond, nil)
	a := NewAdvisor(m, peer)
	a.MaxRemoteRTT = 100 * time.Millisecond
	if !a.Crossover(1, 1) {
		t.Fatal("slow link should replicate immediately")
	}
	a.MaxRemoteRTT = time.Second
	if a.Crossover(1, 1) {
		t.Fatal("fast-enough link stays remote on call 1")
	}
}
