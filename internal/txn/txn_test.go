package txn

import (
	"errors"
	"testing"

	"obiwan/internal/consistency"
	"obiwan/internal/heap"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

type account struct {
	Owner   string
	Balance int64
}

func (a *account) Read() int64 { return a.Balance }

func (a *account) Deposit(v int64) { a.Balance += v }

func init() {
	objmodel.MustRegisterType("txn_test.account", (*account)(nil))
}

type fixture struct {
	net            *transport.MemNetwork
	master, client *replication.Engine
	clientMgr      *Manager
	acct           *account // master copy
}

func setup(t *testing.T, policy replication.Policy) *fixture {
	t.Helper()
	net := transport.NewMemNetwork(netsim.Loopback)
	mrt, err := rmi.NewRuntime(net, "master")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mrt.Close() })
	crt, err := rmi.NewRuntime(net, "client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = crt.Close() })

	var mOpts []replication.Option
	if policy != nil {
		mOpts = append(mOpts, replication.WithPolicy(policy))
	}
	f := &fixture{
		net:    net,
		master: replication.NewEngine(mrt, heap.New(2), mOpts...),
		client: replication.NewEngine(crt, heap.New(1)),
	}
	f.clientMgr = NewManager(f.client)
	f.acct = &account{Owner: "alice", Balance: 100}
	if _, err := f.master.RegisterMaster(f.acct); err != nil {
		t.Fatal(err)
	}
	return f
}

// replica fetches the account replica at the client.
func (f *fixture) replica(t *testing.T) *account {
	t.Helper()
	d, err := f.master.ExportObject(f.acct)
	if err != nil {
		t.Fatal(err)
	}
	ref := f.client.RefFromDescriptor(d, replication.DefaultSpec)
	r, err := objmodel.Deref[*account](ref)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCommitAppliesWrites(t *testing.T) {
	f := setup(t, nil)
	r := f.replica(t)

	tx := f.clientMgr.Begin()
	if err := tx.Write(r); err != nil {
		t.Fatal(err)
	}
	r.Deposit(50)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.Status() != Committed {
		t.Fatalf("status: %v", tx.Status())
	}
	if f.acct.Balance != 150 {
		t.Fatalf("master balance: %d", f.acct.Balance)
	}
}

func TestRollbackRestoresPreimage(t *testing.T) {
	f := setup(t, nil)
	r := f.replica(t)

	tx := f.clientMgr.Begin()
	if err := tx.Write(r); err != nil {
		t.Fatal(err)
	}
	r.Deposit(999)
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if r.Balance != 100 {
		t.Fatalf("balance after rollback: %d", r.Balance)
	}
	if tx.Status() != Aborted {
		t.Fatalf("status: %v", tx.Status())
	}
	if err := tx.Commit(); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after rollback: %v", err)
	}
	if f.acct.Balance != 100 {
		t.Fatalf("master must be untouched: %d", f.acct.Balance)
	}
}

func TestLocalValidationDetectsInterleaving(t *testing.T) {
	f := setup(t, nil)
	r := f.replica(t)

	tx := f.clientMgr.Begin()
	if err := tx.Write(r); err != nil {
		t.Fatal(err)
	}
	r.Deposit(10)

	// A refresh bumps the replica version underneath the transaction.
	f.acct.Deposit(1)
	if err := f.master.MarkUpdated(f.acct); err != nil {
		t.Fatal(err)
	}
	if err := f.client.Refresh(r); err != nil {
		t.Fatal(err)
	}

	err := tx.Commit()
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("commit: %v", err)
	}
	if tx.Status() != Aborted {
		t.Fatalf("status: %v", tx.Status())
	}
	// Pre-image restoration happened against the refreshed state... the
	// transaction's snapshot wins (it was taken before the refresh), so
	// the replica shows the pre-transaction value.
	if r.Balance != 100 {
		t.Fatalf("balance: %d", r.Balance)
	}
}

func TestMasterConflictRollsBack(t *testing.T) {
	f := setup(t, consistency.FirstWriterWins{})
	r := f.replica(t)

	// Another writer updates the master first.
	f.acct.Deposit(5)
	if err := f.master.MarkUpdated(f.acct); err != nil {
		t.Fatal(err)
	}

	tx := f.clientMgr.Begin()
	if err := tx.Write(r); err != nil {
		t.Fatal(err)
	}
	r.Deposit(50)
	err := tx.Commit()
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("commit: %v", err)
	}
	if r.Balance != 100 {
		t.Fatalf("rolled-back balance: %d", r.Balance)
	}
	if f.acct.Balance != 105 {
		t.Fatalf("master: %d", f.acct.Balance)
	}
}

func TestDisconnectedCommitParksAndFlushes(t *testing.T) {
	f := setup(t, nil)
	r := f.replica(t)

	f.net.Disconnect("client", "master")

	tx := f.clientMgr.Begin()
	if err := tx.Write(r); err != nil {
		t.Fatal(err)
	}
	r.Deposit(25)
	if err := tx.Commit(); err != nil {
		t.Fatalf("disconnected commit must park, not fail: %v", err)
	}
	if tx.Status() != Pending {
		t.Fatalf("status: %v", tx.Status())
	}
	if len(f.clientMgr.Pending()) != 1 {
		t.Fatal("pending queue")
	}
	// Local state keeps the committed value.
	if r.Balance != 125 {
		t.Fatalf("local balance: %d", r.Balance)
	}
	// Flush while still offline: stays parked.
	if n, err := f.clientMgr.FlushPending(); n != 0 || err == nil {
		t.Fatalf("offline flush: %d %v", n, err)
	}

	f.net.Reconnect("client", "master")
	n, err := f.clientMgr.FlushPending()
	if err != nil || n != 1 {
		t.Fatalf("flush: %d %v", n, err)
	}
	if tx.Status() != Committed {
		t.Fatalf("status: %v", tx.Status())
	}
	if f.acct.Balance != 125 {
		t.Fatalf("master: %d", f.acct.Balance)
	}
	if len(f.clientMgr.Pending()) != 0 {
		t.Fatal("queue must drain")
	}
}

func TestPendingConflictAtFlushRollsBack(t *testing.T) {
	f := setup(t, consistency.FirstWriterWins{})
	r := f.replica(t)

	f.net.Disconnect("client", "master")
	tx := f.clientMgr.Begin()
	if err := tx.Write(r); err != nil {
		t.Fatal(err)
	}
	r.Deposit(25)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// While the client is away, the master moves on.
	f.acct.Deposit(1)
	if err := f.master.MarkUpdated(f.acct); err != nil {
		t.Fatal(err)
	}

	f.net.Reconnect("client", "master")
	n, err := f.clientMgr.FlushPending()
	if n != 0 || !errors.Is(err, ErrConflict) {
		t.Fatalf("flush: %d %v", n, err)
	}
	if tx.Status() != Aborted {
		t.Fatalf("status: %v", tx.Status())
	}
	if r.Balance != 100 {
		t.Fatalf("rolled-back balance: %d", r.Balance)
	}
	if f.acct.Balance != 101 {
		t.Fatalf("master: %d", f.acct.Balance)
	}
}

func TestReadOnlyTransactionCommitsWithoutRMI(t *testing.T) {
	f := setup(t, nil)
	r := f.replica(t)
	before := f.client.Runtime().Stats().CallsSent

	tx := f.clientMgr.Begin()
	if err := tx.Read(r); err != nil {
		t.Fatal(err)
	}
	_ = r.Read()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if after := f.client.Runtime().Stats().CallsSent; after != before {
		t.Fatalf("read-only commit made %d RMI calls", after-before)
	}
}

func TestWriteOnMasterSideTransaction(t *testing.T) {
	f := setup(t, nil)
	mgr := NewManager(f.master)
	tx := mgr.Begin()
	if err := tx.Write(f.acct); err != nil {
		t.Fatal(err)
	}
	f.acct.Deposit(7)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e, _ := f.master.Heap().EntryOf(f.acct)
	if e.Version() != 2 {
		t.Fatalf("master version: %d", e.Version())
	}
}

func TestUnknownObjectRejected(t *testing.T) {
	f := setup(t, nil)
	tx := f.clientMgr.Begin()
	if err := tx.Write(&account{}); !errors.Is(err, heap.ErrUnknownObject) {
		t.Fatalf("unknown write: %v", err)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Active: "active", Committed: "committed",
		Pending: "pending", Aborted: "aborted", Status(9): "status(9)",
	} {
		if s.String() != want {
			t.Fatalf("%d: %q", s, s.String())
		}
	}
}
