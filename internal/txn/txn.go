// Package txn provides the relaxed transactional support the paper lists
// among OBIWAN's application hooks: "provides hooks for the application
// programmer to implement a set of application specific properties such as
// relaxed transactional support or updates dissemination" (§1).
//
// Transactions here are optimistic and replica-local, designed for the
// mobile scenario:
//
//   - Begin opens a transaction at a site; Read and Write enroll replicas,
//     snapshotting read versions and pre-images.
//   - Commit validates the read set against the local heap (no replica
//     changed underneath the transaction) and then ships each written
//     replica to its master with Put. The master's consistency policy
//     (e.g. consistency.FirstWriterWins) is the global validator.
//   - A conflict anywhere rolls the local replicas back to their
//     pre-images and returns ErrConflict.
//   - Commit while disconnected parks the transaction on a pending queue
//     instead of failing: local state stays committed locally, and
//     FlushPending replays the queue after reconnection — the paper's
//     "users should be able to modify local replicas of global data"
//     carried to its transactional conclusion.
//
// "Relaxed" is precise: there is no cross-master atomic commit (no 2PC);
// isolation is per-site; durability is the master's. This is the standard
// trade-off for disconnected operation.
package txn

import (
	"errors"
	"fmt"
	"sync"

	"obiwan/internal/heap"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

// Errors.
var (
	// ErrConflict is returned by Commit when validation fails locally or a
	// master rejects an update; the transaction has been rolled back.
	ErrConflict = errors.New("txn: conflict, transaction rolled back")
	// ErrClosed is returned for operations on a finished transaction.
	ErrClosed = errors.New("txn: transaction already finished")
	// ErrNotEnrolled is returned by Write for objects never Read/Written
	// in this transaction... it is returned by Commit internals when
	// bookkeeping is inconsistent.
	ErrNotEnrolled = errors.New("txn: object not enrolled")
)

// Status of a transaction.
type Status uint8

const (
	// Active transactions accept reads and writes.
	Active Status = iota
	// Committed transactions applied their writes at the masters.
	Committed
	// Pending transactions committed locally while disconnected and await
	// FlushPending.
	Pending
	// Aborted transactions were rolled back.
	Aborted
)

func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Pending:
		return "pending"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Manager coordinates transactions at one site.
type Manager struct {
	eng *replication.Engine

	mu      sync.Mutex
	nextID  uint64
	pending []*Txn
}

// NewManager builds a transaction manager over a site's engine.
func NewManager(eng *replication.Engine) *Manager {
	return &Manager{eng: eng}
}

// Begin opens a transaction.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	m.nextID++
	id := m.nextID
	m.mu.Unlock()
	return &Txn{
		mgr:      m,
		id:       id,
		status:   Active,
		reads:    make(map[objmodel.OID]uint64),
		preimage: make(map[objmodel.OID][]byte),
		writes:   make(map[objmodel.OID]any),
	}
}

// Pending returns the transactions parked by disconnected commits.
func (m *Manager) Pending() []*Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Txn(nil), m.pending...)
}

// FlushPending replays parked transactions in commit order — the
// reconnection step. Transactions that now conflict are rolled back (their
// local effects are undone) and reported; the rest commit. It returns the
// number committed and the first error.
func (m *Manager) FlushPending() (int, error) {
	m.mu.Lock()
	queue := m.pending
	m.pending = nil
	m.mu.Unlock()

	var firstErr error
	committed := 0
	for _, t := range queue {
		err := t.push()
		switch {
		case err == nil:
			t.setStatus(Committed)
			committed++
		case isDisconnection(err):
			// Still offline: keep it parked.
			m.mu.Lock()
			m.pending = append(m.pending, t)
			m.mu.Unlock()
			if firstErr == nil {
				firstErr = err
			}
		default:
			// Definitive rejection: undo the local effects.
			t.rollbackLocked()
			t.setStatus(Aborted)
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: txn %d: %w", ErrConflict, t.id, err)
			}
		}
	}
	return committed, firstErr
}

// Txn is one optimistic transaction. A Txn must be used from one goroutine
// at a time.
type Txn struct {
	mgr    *Manager
	id     uint64
	mu     sync.Mutex
	status Status

	// reads: replica version observed at enrollment (validation set).
	reads map[objmodel.OID]uint64
	// preimage: state snapshot taken at first enrollment (rollback set).
	preimage map[objmodel.OID][]byte
	// writes: objects the transaction intends to put.
	writes map[objmodel.OID]any
}

// ID returns the transaction id (site-local).
func (t *Txn) ID() uint64 { return t.id }

// Status returns the transaction's state.
func (t *Txn) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

func (t *Txn) setStatus(s Status) {
	t.mu.Lock()
	t.status = s
	t.mu.Unlock()
}

// enroll snapshots version and pre-image on first contact with obj.
func (t *Txn) enroll(obj any) (*heap.Entry, error) {
	entry, ok := t.mgr.eng.Heap().EntryOf(obj)
	if !ok {
		return nil, heap.ErrUnknownObject
	}
	if _, seen := t.reads[entry.OID]; !seen {
		state, err := t.mgr.eng.CaptureSnapshot(obj)
		if err != nil {
			return nil, err
		}
		t.reads[entry.OID] = entry.Version()
		t.preimage[entry.OID] = state
	}
	return entry, nil
}

// Read enrolls obj in the read set. Call before (or at) first access.
func (t *Txn) Read(obj any) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.status != Active {
		return ErrClosed
	}
	_, err := t.enroll(obj)
	return err
}

// Write enrolls obj in the write set (implying Read). The caller mutates
// the object afterwards as usual.
func (t *Txn) Write(obj any) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.status != Active {
		return ErrClosed
	}
	entry, err := t.enroll(obj)
	if err != nil {
		return err
	}
	t.writes[entry.OID] = obj
	entry.SetDirty(true)
	return nil
}

// Commit validates and applies the transaction. Read-set validation is
// local; write application is per-master Put, judged by the master's
// consistency policy. While disconnected the transaction parks as Pending
// and Commit returns nil: local work proceeds, FlushPending finishes the
// job later.
func (t *Txn) Commit() error {
	t.mu.Lock()
	if t.status != Active {
		t.mu.Unlock()
		return ErrClosed
	}
	// Local validation: no enrolled object changed version since we read
	// it (another transaction or a refresh would have bumped it).
	for oid, readV := range t.reads {
		entry, ok := t.mgr.eng.Heap().Get(oid)
		if !ok {
			t.rollbackLocked()
			t.status = Aborted
			t.mu.Unlock()
			return fmt.Errorf("%w: %v evicted during transaction", ErrConflict, oid)
		}
		if entry.Version() != readV {
			t.rollbackLocked()
			t.status = Aborted
			t.mu.Unlock()
			return fmt.Errorf("%w: %v changed underneath (v%d → v%d)",
				ErrConflict, oid, readV, entry.Version())
		}
	}
	t.mu.Unlock()

	err := t.push()
	switch {
	case err == nil:
		t.setStatus(Committed)
		return nil
	case isDisconnection(err):
		t.setStatus(Pending)
		t.mgr.mu.Lock()
		t.mgr.pending = append(t.mgr.pending, t)
		t.mgr.mu.Unlock()
		return nil
	default:
		t.mu.Lock()
		t.rollbackLocked()
		t.status = Aborted
		t.mu.Unlock()
		return fmt.Errorf("%w: %w", ErrConflict, err)
	}
}

// push ships the write set to the masters. Masters only see whole objects,
// so a master write (role Master) just bumps versions via MarkUpdated.
func (t *Txn) push() error {
	t.mu.Lock()
	writes := make([]any, 0, len(t.writes))
	for _, obj := range t.writes {
		writes = append(writes, obj)
	}
	t.mu.Unlock()
	for _, obj := range writes {
		entry, ok := t.mgr.eng.Heap().EntryOf(obj)
		if !ok {
			return ErrNotEnrolled
		}
		var err error
		if entry.Role == heap.Master {
			err = t.mgr.eng.MarkUpdated(obj)
		} else if entry.ClusterMember() {
			err = t.mgr.eng.PutCluster(obj)
		} else {
			err = t.mgr.eng.Put(obj)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Rollback undoes the transaction's local effects and closes it.
func (t *Txn) Rollback() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.status != Active && t.status != Pending {
		return ErrClosed
	}
	t.rollbackLocked()
	t.status = Aborted
	return nil
}

// rollbackLocked restores every pre-image. Caller holds t.mu or has
// exclusive access.
func (t *Txn) rollbackLocked() {
	for oid, state := range t.preimage {
		entry, ok := t.mgr.eng.Heap().Get(oid)
		if !ok {
			continue
		}
		// Restore failures leave the object as-is; there is no better
		// recovery than the master's copy (a later Refresh).
		_ = t.mgr.eng.RestoreSnapshot(entry.Obj, state)
		entry.SetDirty(false)
	}
}

// isDisconnection classifies errors that mean "try again when connected":
// link-level disconnections, unreachable peers, dropped connections, and
// call timeouts. Definitive application-level rejections (e.g. a
// consistency conflict) are not disconnections.
func isDisconnection(err error) bool {
	return errors.Is(err, netsim.ErrDisconnected) ||
		errors.Is(err, transport.ErrUnreachable) ||
		errors.Is(err, transport.ErrClosed) ||
		errors.Is(err, rmi.ErrTimeout)
}
