// Package txn provides the relaxed transactional support the paper lists
// among OBIWAN's application hooks: "provides hooks for the application
// programmer to implement a set of application specific properties such as
// relaxed transactional support or updates dissemination" (§1).
//
// Transactions here are optimistic and replica-local, designed for the
// mobile scenario:
//
//   - Begin opens a transaction at a site; Read and Write enroll replicas,
//     snapshotting read versions and pre-images.
//   - Commit validates the read set against the local heap (no replica
//     changed underneath the transaction) and then ships each written
//     replica to its master with Put. The master's consistency policy
//     (e.g. consistency.FirstWriterWins) is the global validator.
//   - A conflict anywhere rolls the local replicas back to their
//     pre-images and returns ErrConflict.
//   - Commit while disconnected parks the transaction on a pending queue
//     instead of failing: local state stays committed locally, and
//     FlushPending replays the queue after reconnection — the paper's
//     "users should be able to modify local replicas of global data"
//     carried to its transactional conclusion.
//
// "Relaxed" is precise: there is no cross-master atomic commit (no 2PC);
// isolation is per-site; durability is the master's. This is the standard
// trade-off for disconnected operation.
package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"obiwan/internal/eventual"
	"obiwan/internal/heap"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

// Errors.
var (
	// ErrConflict is returned by Commit when validation fails locally or a
	// master rejects an update; the transaction has been rolled back.
	ErrConflict = errors.New("txn: conflict, transaction rolled back")
	// ErrClosed is returned for operations on a finished transaction.
	ErrClosed = errors.New("txn: transaction already finished")
	// ErrNotEnrolled is returned by Write for objects never Read/Written
	// in this transaction... it is returned by Commit internals when
	// bookkeeping is inconsistent.
	ErrNotEnrolled = errors.New("txn: object not enrolled")
)

// Status of a transaction.
type Status uint8

const (
	// Active transactions accept reads and writes.
	Active Status = iota
	// Committed transactions applied their writes at the masters.
	Committed
	// Pending transactions committed locally while disconnected and await
	// FlushPending.
	Pending
	// Aborted transactions were rolled back.
	Aborted
)

func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Pending:
		return "pending"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// PendingJournal durably records the pending-commit queue: which parked
// transactions exist (their write-set OIDs ride along so recovery can
// rebuild the write set from the recovered heap) and when each resolves.
// The site layer implements it over the same WAL as the replication
// journal; the written replica states themselves are made durable through
// the engine's dirty-replica journaling, so a parked commit survives a
// crash end to end.
type PendingJournal interface {
	TxnParked(id uint64, writeOIDs []uint64) error
	TxnResolved(id uint64) error
}

// Manager coordinates transactions at one site.
type Manager struct {
	eng *replication.Engine

	mu      sync.Mutex
	nextID  uint64
	pending []*Txn
	pj      PendingJournal
	ev      *eventual.Store
}

// NewManager builds a transaction manager over a site's engine.
func NewManager(eng *replication.Engine) *Manager {
	return &Manager{eng: eng}
}

// SetPendingJournal installs the pending-queue journal (nil to clear).
func (m *Manager) SetPendingJournal(pj PendingJournal) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pj = pj
}

// SetEventual routes update-function intents (Txn.Apply) on log-managed
// objects through the weakly-connected store: their commits append to the
// update log — which works fully disconnected — instead of shipping raw
// state to the master.
func (m *Manager) SetEventual(s *eventual.Store) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ev = s
}

func (m *Manager) eventualStore() *eventual.Store {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ev
}

func (m *Manager) pendingJournal() PendingJournal {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pj
}

// AdoptPending re-parks a transaction recovered from the pending-commit
// journal. The write set is rebuilt from the recovered heap (the dirty
// replica states came back through the replication journal); OIDs no
// longer in the heap are skipped. Adopted transactions have no pre-images
// — a post-recovery rejection clears the dirty flag and leaves the state
// for a Refresh rather than rolling back.
func (m *Manager) AdoptPending(id uint64, writeOIDs []uint64) *Txn {
	t := &Txn{
		mgr:      m,
		id:       id,
		status:   Pending,
		parked:   true,
		reads:    make(map[objmodel.OID]uint64),
		preimage: make(map[objmodel.OID][]byte),
		writes:   make(map[objmodel.OID]any),
	}
	for _, o := range writeOIDs {
		oid := objmodel.OID(o)
		if entry, ok := m.eng.Heap().Get(oid); ok {
			t.writes[oid] = entry.Obj
		}
	}
	m.mu.Lock()
	if id > m.nextID {
		m.nextID = id
	}
	m.pending = append(m.pending, t)
	m.mu.Unlock()
	return t
}

// Begin opens a transaction.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	m.nextID++
	id := m.nextID
	m.mu.Unlock()
	return &Txn{
		mgr:      m,
		id:       id,
		status:   Active,
		reads:    make(map[objmodel.OID]uint64),
		preimage: make(map[objmodel.OID][]byte),
		writes:   make(map[objmodel.OID]any),
	}
}

// Pending returns the transactions parked by disconnected commits.
func (m *Manager) Pending() []*Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Txn(nil), m.pending...)
}

// FlushPending replays parked transactions in commit order — the
// reconnection step. Transactions that now conflict are rolled back (their
// local effects are undone) and reported; the rest commit. It returns the
// number committed and the first error.
func (m *Manager) FlushPending() (int, error) {
	m.mu.Lock()
	queue := m.pending
	m.pending = nil
	m.mu.Unlock()

	var firstErr error
	committed := 0
	for _, t := range queue {
		err := t.push()
		switch {
		case err == nil:
			t.setStatus(Committed)
			t.journalResolve()
			committed++
		case isDisconnection(err):
			// Still offline: keep it parked (its journal record stands).
			m.mu.Lock()
			m.pending = append(m.pending, t)
			m.mu.Unlock()
			if firstErr == nil {
				firstErr = err
			}
		default:
			// Definitive rejection: undo the local effects.
			t.rollbackLocked()
			t.setStatus(Aborted)
			t.journalResolve()
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: txn %d: %w", ErrConflict, t.id, err)
			}
		}
	}
	return committed, firstErr
}

// Txn is one optimistic transaction. A Txn must be used from one goroutine
// at a time.
type Txn struct {
	mgr    *Manager
	id     uint64
	mu     sync.Mutex
	status Status
	// parked: this transaction's park is journaled and must be resolved.
	parked bool

	// reads: replica version observed at enrollment (validation set).
	reads map[objmodel.OID]uint64
	// preimage: state snapshot taken at first enrollment (rollback set).
	preimage map[objmodel.OID][]byte
	// writes: objects the transaction intends to put.
	writes map[objmodel.OID]any
	// applies: update-function intents against log-managed objects, in
	// call order; committed by appending to the eventual store's log.
	applies []applyIntent
}

type applyIntent struct {
	obj  any
	fn   string
	args []byte
}

// ID returns the transaction id (site-local).
func (t *Txn) ID() uint64 { return t.id }

// Status returns the transaction's state.
func (t *Txn) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

func (t *Txn) setStatus(s Status) {
	t.mu.Lock()
	t.status = s
	t.mu.Unlock()
}

// enroll snapshots version and pre-image on first contact with obj.
func (t *Txn) enroll(obj any) (*heap.Entry, error) {
	entry, ok := t.mgr.eng.Heap().EntryOf(obj)
	if !ok {
		return nil, heap.ErrUnknownObject
	}
	if _, seen := t.reads[entry.OID]; !seen {
		state, err := t.mgr.eng.CaptureSnapshot(obj)
		if err != nil {
			return nil, err
		}
		t.reads[entry.OID] = entry.Version()
		t.preimage[entry.OID] = state
	}
	return entry, nil
}

// Read enrolls obj in the read set. Call before (or at) first access.
func (t *Txn) Read(obj any) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.status != Active {
		return ErrClosed
	}
	_, err := t.enroll(obj)
	return err
}

// Write enrolls obj in the write set (implying Read). The caller mutates
// the object afterwards as usual.
func (t *Txn) Write(obj any) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.status != Active {
		return ErrClosed
	}
	entry, err := t.enroll(obj)
	if err != nil {
		return err
	}
	t.writes[entry.OID] = obj
	entry.SetDirty(true)
	return nil
}

// Apply enrolls an update-function intent: run the registered function fn
// with args against obj at commit. If obj is managed by the site's
// weakly-connected store (Manager.SetEventual), commit appends the update
// to the log — tentatively applied at once, committed by the object's
// primary through anti-entropy — which succeeds fully disconnected and
// merges with concurrent edits instead of conflicting. Unmanaged objects
// fall back to write semantics: fn runs immediately and the resulting
// state ships to the master at commit like any Write.
func (t *Txn) Apply(obj any, fn string, args []byte) error {
	if !eventual.HasUpdate(fn) {
		return fmt.Errorf("%w: %q", eventual.ErrUnknownUpdateFunc, fn)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.status != Active {
		return ErrClosed
	}
	entry, ok := t.mgr.eng.Heap().EntryOf(obj)
	if !ok {
		return heap.ErrUnknownObject
	}
	if ev := t.mgr.eventualStore(); ev != nil && ev.Managed(entry.OID) {
		t.applies = append(t.applies, applyIntent{obj: obj, fn: fn, args: args})
		return nil
	}
	if _, err := t.enroll(obj); err != nil {
		return err
	}
	if err := eventual.ApplyRegistered(obj, fn, args); err != nil {
		return err
	}
	t.writes[entry.OID] = obj
	entry.SetDirty(true)
	return nil
}

// Commit validates and applies the transaction. Read-set validation is
// local; write application is per-master Put, judged by the master's
// consistency policy. While disconnected the transaction parks as Pending
// and Commit returns nil: local work proceeds, FlushPending finishes the
// job later. Update-function intents (Apply on log-managed objects)
// append to the update log first — that part of the commit never needs
// connectivity.
func (t *Txn) Commit() error {
	t.mu.Lock()
	if t.status != Active {
		t.mu.Unlock()
		return ErrClosed
	}
	// Local validation: no enrolled object changed version since we read
	// it (another transaction or a refresh would have bumped it).
	for oid, readV := range t.reads {
		entry, ok := t.mgr.eng.Heap().Get(oid)
		if !ok {
			t.rollbackLocked()
			t.status = Aborted
			t.mu.Unlock()
			return fmt.Errorf("%w: %v evicted during transaction", ErrConflict, oid)
		}
		if entry.Version() != readV {
			t.rollbackLocked()
			t.status = Aborted
			t.mu.Unlock()
			return fmt.Errorf("%w: %v changed underneath (v%d → v%d)",
				ErrConflict, oid, readV, entry.Version())
		}
	}
	intents := t.applies
	t.mu.Unlock()

	// Log-managed intents first: appending to the update log is local and
	// connectivity-free. A failure here is a programming error (unknown
	// function was pre-checked, tracking was checked at Apply).
	if ev := t.mgr.eventualStore(); ev != nil {
		for _, in := range intents {
			if _, err := ev.Append(in.obj, in.fn, in.args); err != nil {
				t.mu.Lock()
				t.rollbackLocked()
				t.status = Aborted
				t.mu.Unlock()
				return fmt.Errorf("%w: %w", ErrConflict, err)
			}
		}
	}

	err := t.push()
	switch {
	case err == nil:
		t.setStatus(Committed)
		return nil
	case isDisconnection(err):
		t.setStatus(Pending)
		t.mgr.mu.Lock()
		t.mgr.pending = append(t.mgr.pending, t)
		t.mgr.mu.Unlock()
		return t.journalPark()
	default:
		t.mu.Lock()
		t.rollbackLocked()
		t.status = Aborted
		t.mu.Unlock()
		return fmt.Errorf("%w: %w", ErrConflict, err)
	}
}

// journalPark makes a freshly parked transaction durable: each written
// replica's edited state goes through the engine's dirty-replica journal
// and the park itself through the pending journal. A returned error means
// the park is NOT durable (the transaction stays parked in memory).
func (t *Txn) journalPark() error {
	t.mu.Lock()
	if t.parked {
		t.mu.Unlock()
		return nil
	}
	t.parked = true
	oids := make([]uint64, 0, len(t.writes))
	objs := make([]any, 0, len(t.writes))
	for oid, obj := range t.writes {
		oids = append(oids, uint64(oid))
		objs = append(objs, obj)
	}
	t.mu.Unlock()
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, obj := range objs {
		entry, ok := t.mgr.eng.Heap().EntryOf(obj)
		if !ok || entry.Role == heap.Master {
			continue // masters journal through their own update path
		}
		if err := t.mgr.eng.JournalDirty(obj); err != nil {
			return err
		}
	}
	pj := t.mgr.pendingJournal()
	if pj == nil {
		return nil
	}
	return pj.TxnParked(t.id, oids)
}

// journalResolve retracts a parked transaction's journal record once it
// commits or aborts. Best-effort: a missed retraction only means recovery
// re-adopts a finished transaction, whose replay is idempotent.
func (t *Txn) journalResolve() {
	t.mu.Lock()
	wasParked := t.parked
	t.parked = false
	t.mu.Unlock()
	if !wasParked {
		return
	}
	if pj := t.mgr.pendingJournal(); pj != nil {
		_ = pj.TxnResolved(t.id)
	}
}

// push ships the write set to the masters. Masters only see whole objects,
// so a master write (role Master) just bumps versions via MarkUpdated.
func (t *Txn) push() error {
	t.mu.Lock()
	writes := make([]any, 0, len(t.writes))
	for _, obj := range t.writes {
		writes = append(writes, obj)
	}
	t.mu.Unlock()
	for _, obj := range writes {
		entry, ok := t.mgr.eng.Heap().EntryOf(obj)
		if !ok {
			return ErrNotEnrolled
		}
		var err error
		if entry.Role == heap.Master {
			err = t.mgr.eng.MarkUpdated(obj)
		} else if entry.ClusterMember() {
			err = t.mgr.eng.PutCluster(obj)
		} else {
			err = t.mgr.eng.Put(obj)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Rollback undoes the transaction's local effects and closes it.
func (t *Txn) Rollback() error {
	t.mu.Lock()
	if t.status != Active && t.status != Pending {
		t.mu.Unlock()
		return ErrClosed
	}
	t.rollbackLocked()
	t.status = Aborted
	t.mu.Unlock()
	t.journalResolve()
	return nil
}

// rollbackLocked restores every pre-image. Caller holds t.mu or has
// exclusive access.
func (t *Txn) rollbackLocked() {
	for oid, state := range t.preimage {
		entry, ok := t.mgr.eng.Heap().Get(oid)
		if !ok {
			continue
		}
		// Restore failures leave the object as-is; there is no better
		// recovery than the master's copy (a later Refresh).
		_ = t.mgr.eng.RestoreSnapshot(entry.Obj, state)
		entry.SetDirty(false)
	}
	// Adopted (recovered) transactions carry no pre-images: the best undo
	// is dropping the dirty mark and letting a Refresh fetch the master's
	// copy.
	for oid := range t.writes {
		if _, havePre := t.preimage[oid]; havePre {
			continue
		}
		if entry, ok := t.mgr.eng.Heap().Get(oid); ok {
			entry.SetDirty(false)
		}
	}
}

// isDisconnection classifies errors that mean "try again when connected":
// link-level disconnections, unreachable peers, dropped connections, and
// call timeouts. Definitive application-level rejections (e.g. a
// consistency conflict) are not disconnections.
func isDisconnection(err error) bool {
	return errors.Is(err, netsim.ErrDisconnected) ||
		errors.Is(err, transport.ErrUnreachable) ||
		errors.Is(err, transport.ErrClosed) ||
		errors.Is(err, rmi.ErrTimeout)
}
