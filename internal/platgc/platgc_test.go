package platgc

import (
	"sync"
	"testing"
)

func TestCountersAndLiveness(t *testing.T) {
	var a Accountant
	if s := a.Snapshot(); s != (Stats{}) {
		t.Fatalf("zero value: %+v", s)
	}
	a.ProxyOutCreated()
	a.ProxyOutCreated()
	a.ProxyOutReclaimed()
	a.FaultServedFromHeap()
	a.ProxyInExported()
	a.ProxyInReused()
	s := a.Snapshot()
	if s.ProxyOutsCreated != 2 || s.ProxyOutsReclaimed != 1 {
		t.Fatalf("proxy-outs: %+v", s)
	}
	if s.LiveProxyOuts() != 1 {
		t.Fatalf("live: %d", s.LiveProxyOuts())
	}
	if s.FaultsServedFromHeap != 1 || s.ProxyInsExported != 1 || s.ProxyInsReused != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestConcurrentAccounting(t *testing.T) {
	var a Accountant
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.ProxyOutCreated()
				a.ProxyOutReclaimed()
			}
		}()
	}
	wg.Wait()
	s := a.Snapshot()
	if s.ProxyOutsCreated != workers*per || s.LiveProxyOuts() != 0 {
		t.Fatalf("stats after concurrency: %+v", s)
	}
}
