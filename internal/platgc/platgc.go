// Package platgc accounts for the lifecycle of OBIWAN platform objects —
// proxies-in and proxies-out.
//
// In the original prototype, a proxy-out that had been spliced out by
// updateMember became unreachable and "will be reclaimed by the garbage
// collector of the underlying virtual machine" (§2.2, step 6). Go's GC does
// the reclaiming here too, but the platform still needs to observe it: the
// paper's evaluation hinges on how many proxy pairs are created and
// transferred (figures 5 vs 6), and tests must be able to assert that
// resolved proxies actually die. This package is that observable ledger.
package platgc

import "sync/atomic"

// Stats is a snapshot of the platform-object ledger.
type Stats struct {
	// ProxyOutsCreated counts proxy-outs materialized at this site.
	ProxyOutsCreated uint64
	// ProxyOutsReclaimed counts proxy-outs spliced out by updateMember and
	// handed to the garbage collector.
	ProxyOutsReclaimed uint64
	// FaultsServedFromHeap counts object faults satisfied without a remote
	// demand because the target was already replicated here.
	FaultsServedFromHeap uint64
	// ProxyInsExported counts proxy-ins exported at this site.
	ProxyInsExported uint64
	// ProxyInsReused counts proxy-in requests satisfied by an existing
	// export (the paper's AProxyIn is created once, however many sites
	// replicate A).
	ProxyInsReused uint64
}

// LiveProxyOuts returns the number of proxy-outs still reachable.
func (s Stats) LiveProxyOuts() uint64 {
	return s.ProxyOutsCreated - s.ProxyOutsReclaimed
}

// Accountant is the per-site ledger. The zero value is ready to use and
// safe for concurrent use.
type Accountant struct {
	proxyOutsCreated     atomic.Uint64
	proxyOutsReclaimed   atomic.Uint64
	faultsServedFromHeap atomic.Uint64
	proxyInsExported     atomic.Uint64
	proxyInsReused       atomic.Uint64
}

// ProxyOutCreated records the materialization of a proxy-out.
func (a *Accountant) ProxyOutCreated() { a.proxyOutsCreated.Add(1) }

// ProxyOutReclaimed records a proxy-out detached by the splice and left to
// the garbage collector.
func (a *Accountant) ProxyOutReclaimed() { a.proxyOutsReclaimed.Add(1) }

// FaultServedFromHeap records a fault satisfied by an existing replica.
func (a *Accountant) FaultServedFromHeap() { a.faultsServedFromHeap.Add(1) }

// ProxyInExported records a new proxy-in export.
func (a *Accountant) ProxyInExported() { a.proxyInsExported.Add(1) }

// ProxyInReused records a proxy-in request satisfied by an existing export.
func (a *Accountant) ProxyInReused() { a.proxyInsReused.Add(1) }

// Snapshot returns the current counters.
func (a *Accountant) Snapshot() Stats {
	return Stats{
		ProxyOutsCreated:     a.proxyOutsCreated.Load(),
		ProxyOutsReclaimed:   a.proxyOutsReclaimed.Load(),
		FaultsServedFromHeap: a.faultsServedFromHeap.Load(),
		ProxyInsExported:     a.proxyInsExported.Load(),
		ProxyInsReused:       a.proxyInsReused.Load(),
	}
}
