package invoke

import (
	"errors"
	"reflect"
	"testing"
)

type svc struct {
	last string
}

func (s *svc) Greet(name string) string { return "hi " + name }

func (s *svc) Record(v string) { s.last = v }

func (s *svc) Fail() error { return errors.New("nope") }

func (s *svc) Both(x int64) (int64, error) { return x + 1, nil }

func (s *svc) Many(xs ...string) int { return len(xs) }

func (s *svc) unexported() {} //nolint:unused // verifies filtering

func TestMethodTableFiltersExported(t *testing.T) {
	tab, err := MethodTable(reflect.TypeOf(&svc{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tab["Greet"]; !ok {
		t.Fatal("Greet missing")
	}
	if _, ok := tab["unexported"]; ok {
		t.Fatal("unexported leaked")
	}
	// Cached: same map back.
	tab2, err := MethodTable(reflect.TypeOf(&svc{}))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.ValueOf(tab).Pointer() != reflect.ValueOf(tab2).Pointer() {
		t.Fatal("method table not cached")
	}
}

func TestMethodTableRejectsBareTypes(t *testing.T) {
	if _, err := MethodTable(reflect.TypeOf(42)); err == nil {
		t.Fatal("int must be rejected")
	}
}

func TestCallHappyPath(t *testing.T) {
	s := &svc{}
	res, err := Call(s, "Greet", []any{"bob"})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "hi bob" {
		t.Fatalf("res: %#v", res)
	}
	// Void method with side effect.
	res, err = Call(s, "Record", []any{"x"})
	if err != nil || len(res) != 0 || s.last != "x" {
		t.Fatalf("record: %v %v %q", res, err, s.last)
	}
}

func TestCallErrorClassification(t *testing.T) {
	s := &svc{}
	var ie *Error

	_, err := Call(s, "Missing", nil)
	if !errors.As(err, &ie) || ie.Kind != KindNoSuchMethod {
		t.Fatalf("missing: %v", err)
	}
	_, err = Call(s, "Greet", []any{"a", "b"})
	if !errors.As(err, &ie) || ie.Kind != KindBadArgs {
		t.Fatalf("arity: %v", err)
	}
	_, err = Call(s, "Greet", []any{int64(3)})
	if !errors.As(err, &ie) || ie.Kind != KindBadArgs {
		t.Fatalf("type: %v", err)
	}
	_, err = Call(s, "Fail", nil)
	if !errors.As(err, &ie) || ie.Kind != KindApp || ie.Message != "nope" {
		t.Fatalf("app: %v", err)
	}
	if errors.Unwrap(ie) == nil {
		t.Fatal("app error must unwrap to the cause")
	}
}

func TestCallStripsTrailingNilError(t *testing.T) {
	res, err := Call(&svc{}, "Both", []any{int64(4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] != int64(5) {
		t.Fatalf("res: %#v", res)
	}
}

func TestCallVariadic(t *testing.T) {
	res, err := Call(&svc{}, "Many", []any{"a", "b", "c"})
	if err != nil || res[0] != 3 {
		t.Fatalf("variadic: %v %v", res, err)
	}
	res, err = Call(&svc{}, "Many", nil)
	if err != nil || res[0] != 0 {
		t.Fatalf("empty variadic: %v %v", res, err)
	}
}

func TestConvertArgMatrix(t *testing.T) {
	cases := []struct {
		name string
		in   any
		pt   reflect.Type
		ok   bool
		want any
	}{
		{"identity", "s", reflect.TypeOf(""), true, "s"},
		{"int64→int", int64(5), reflect.TypeOf(int(0)), true, 5},
		{"int64→int8 overflow", int64(300), reflect.TypeOf(int8(0)), false, nil},
		{"uint64→int64", uint64(5), reflect.TypeOf(int64(0)), true, int64(5)},
		{"uint64 huge→int64", uint64(1 << 63), reflect.TypeOf(int64(0)), false, nil},
		{"int64 neg→uint", int64(-1), reflect.TypeOf(uint(0)), false, nil},
		{"float64→float32", float64(1.5), reflect.TypeOf(float32(0)), true, float32(1.5)},
		{"nil→pointer", nil, reflect.TypeOf((*svc)(nil)), true, (*svc)(nil)},
		{"nil→int", nil, reflect.TypeOf(0), false, nil},
		{"[]any→[]string", []any{"a", "b"}, reflect.TypeOf([]string(nil)), true, []string{"a", "b"}},
		{"[]any bad elem", []any{"a", int64(1)}, reflect.TypeOf([]string(nil)), false, nil},
		{"string→named string", "x", reflect.TypeOf(namedString("")), true, namedString("x")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := ConvertArg(tc.in, tc.pt)
			if tc.ok != (err == nil) {
				t.Fatalf("ok=%v err=%v", tc.ok, err)
			}
			if err == nil && !reflect.DeepEqual(v.Interface(), tc.want) {
				t.Fatalf("got %#v want %#v", v.Interface(), tc.want)
			}
		})
	}
}

type namedString string

func TestCallOnValueReceiverSet(t *testing.T) {
	// Methods declared on the value type are callable via the pointer too.
	res, err := Call(valRecv{7}, "Get", nil)
	if err != nil || res[0] != 7 {
		t.Fatalf("value receiver: %v %v", res, err)
	}
}

type valRecv struct{ n int }

func (v valRecv) Get() int { return v.n }
