// Package invoke implements reflection-based method dispatch over decoded
// wire values. It is shared by two layers that the paper treats as distinct
// but structurally identical:
//
//   - the RMI skeleton (server-side dispatch of remote calls), and
//   - local method invocation (LMI) through an OBIWAN reference, where the
//     same call frame is applied to a local replica instead.
//
// Method tables are computed once per concrete type and cached.
package invoke

import (
	"fmt"
	"reflect"
	"sync"
)

// ErrorKind classifies dispatch failures so transport layers can map them
// to protocol faults.
type ErrorKind uint8

const (
	// KindNoSuchMethod: the target type has no such exported method.
	KindNoSuchMethod ErrorKind = iota + 1
	// KindBadArgs: argument count or type mismatch.
	KindBadArgs
	// KindApp: the method itself returned a non-nil error.
	KindApp
)

// Error is a classified dispatch failure.
type Error struct {
	Kind    ErrorKind
	Method  string
	Message string
	// Cause is the application error for KindApp.
	Cause error
}

func (e *Error) Error() string {
	return fmt.Sprintf("invoke: %s: %s", e.Method, e.Message)
}

func (e *Error) Unwrap() error { return e.Cause }

var (
	errType = reflect.TypeOf((*error)(nil)).Elem()

	tableMu sync.RWMutex
	tables  = make(map[reflect.Type]map[string]reflect.Method)
)

// MethodTable returns the exported method set of t, cached. Types with no
// exported methods are rejected.
func MethodTable(t reflect.Type) (map[string]reflect.Method, error) {
	tableMu.RLock()
	cached, ok := tables[t]
	tableMu.RUnlock()
	if ok {
		return cached, nil
	}
	methods := make(map[string]reflect.Method, t.NumMethod())
	for i := 0; i < t.NumMethod(); i++ {
		m := t.Method(i)
		if m.IsExported() {
			methods[m.Name] = m
		}
	}
	if len(methods) == 0 {
		return nil, fmt.Errorf("invoke: type %v has no exported methods", t)
	}
	tableMu.Lock()
	tables[t] = methods
	tableMu.Unlock()
	return methods, nil
}

// Call invokes method on recv with decoded wire arguments, adapting each
// argument to the declared parameter type. A trailing error result is
// stripped: nil vanishes, non-nil comes back as a KindApp *Error.
func Call(recv any, method string, args []any) ([]any, error) {
	rv := reflect.ValueOf(recv)
	table, err := MethodTable(rv.Type())
	if err != nil {
		return nil, &Error{Kind: KindNoSuchMethod, Method: method, Message: err.Error()}
	}
	return CallWithTable(rv, table, method, args)
}

// CallWithTable is Call with a pre-resolved receiver value and method table,
// for dispatchers that cache both.
func CallWithTable(recv reflect.Value, table map[string]reflect.Method, method string, args []any) ([]any, error) {
	m, ok := table[method]
	if !ok {
		return nil, &Error{
			Kind: KindNoSuchMethod, Method: method,
			Message: fmt.Sprintf("%v has no method %s", recv.Type(), method),
		}
	}
	mt := m.Type
	wantArgs := mt.NumIn() - 1 // parameter 0 is the receiver
	variadic := mt.IsVariadic()
	if (!variadic && len(args) != wantArgs) || (variadic && len(args) < wantArgs-1) {
		return nil, &Error{
			Kind: KindBadArgs, Method: method,
			Message: fmt.Sprintf("wants %d args, got %d", wantArgs, len(args)),
		}
	}
	in := make([]reflect.Value, 0, len(args)+1)
	in = append(in, recv)
	for i, a := range args {
		var pt reflect.Type
		if variadic && i >= wantArgs-1 {
			pt = mt.In(mt.NumIn() - 1).Elem()
		} else {
			pt = mt.In(i + 1)
		}
		av, err := ConvertArg(a, pt)
		if err != nil {
			return nil, &Error{
				Kind: KindBadArgs, Method: method,
				Message: fmt.Sprintf("arg %d: %v", i, err),
			}
		}
		in = append(in, av)
	}

	out := m.Func.Call(in)

	if n := len(out); n > 0 && mt.Out(n-1) == errType {
		if errv := out[n-1]; !errv.IsNil() {
			cause := errv.Interface().(error)
			return nil, &Error{Kind: KindApp, Method: method, Message: cause.Error(), Cause: cause}
		}
		out = out[:n-1]
	}
	results := make([]any, len(out))
	for i, v := range out {
		results[i] = v.Interface()
	}
	return results, nil
}

// ConvertArg adapts a decoded wire value (canonical types: bool, int64,
// uint64, float64, string, []byte, []any, map[string]any, *Struct, ...) to
// the declared parameter type pt.
func ConvertArg(a any, pt reflect.Type) (reflect.Value, error) {
	if a == nil {
		switch pt.Kind() {
		case reflect.Pointer, reflect.Interface, reflect.Slice, reflect.Map:
			return reflect.Zero(pt), nil
		default:
			return reflect.Value{}, fmt.Errorf("nil not assignable to %v", pt)
		}
	}
	av := reflect.ValueOf(a)
	at := av.Type()
	if at.AssignableTo(pt) {
		return av, nil
	}
	// Registered structs decode as *T; accept a T parameter too.
	if at.Kind() == reflect.Pointer && at.Elem().AssignableTo(pt) {
		return av.Elem(), nil
	}
	switch pt.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if i, ok := wireInt(a); ok {
			out := reflect.New(pt).Elem()
			if out.OverflowInt(i) {
				return reflect.Value{}, fmt.Errorf("value %d overflows %v", i, pt)
			}
			out.SetInt(i)
			return out, nil
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		if u, ok := wireUint(a); ok {
			out := reflect.New(pt).Elem()
			if out.OverflowUint(u) {
				return reflect.Value{}, fmt.Errorf("value %d overflows %v", u, pt)
			}
			out.SetUint(u)
			return out, nil
		}
	case reflect.Float32, reflect.Float64:
		if f, ok := a.(float64); ok {
			out := reflect.New(pt).Elem()
			out.SetFloat(f)
			return out, nil
		}
	case reflect.Interface:
		if at.Implements(pt) {
			return av, nil
		}
	case reflect.Slice:
		// []any → []T element-wise.
		if src, ok := a.([]any); ok {
			out := reflect.MakeSlice(pt, len(src), len(src))
			for i, el := range src {
				ev, err := ConvertArg(el, pt.Elem())
				if err != nil {
					return reflect.Value{}, fmt.Errorf("[%d]: %w", i, err)
				}
				out.Index(i).Set(ev)
			}
			return out, nil
		}
	case reflect.String:
		if s, ok := a.(string); ok {
			return reflect.ValueOf(s).Convert(pt), nil
		}
	}
	return reflect.Value{}, fmt.Errorf("%T not assignable to %v", a, pt)
}

func wireInt(a any) (int64, bool) {
	switch v := a.(type) {
	case int64:
		return v, true
	case uint64:
		if v > 1<<63-1 {
			return 0, false
		}
		return int64(v), true
	default:
		return 0, false
	}
}

func wireUint(a any) (uint64, bool) {
	switch v := a.(type) {
	case uint64:
		return v, true
	case int64:
		if v < 0 {
			return 0, false
		}
		return uint64(v), true
	default:
		return 0, false
	}
}
