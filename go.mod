module obiwan

go 1.22
