// Package obiwan is the public API of the OBIWAN middleware platform — a
// from-scratch Go implementation of "Incremental Replication for Mobility
// Support in OBIWAN" (Veiga & Ferreira, ICDCS 2002).
//
// OBIWAN lets a distributed application decide, at run time, how each
// object is invoked: remotely over RMI, or locally on a replica that is
// brought over on demand. Object graphs replicate incrementally: fetching
// an object ships proxy stand-ins for everything it references, and
// invoking through such a reference raises an object fault that demands
// the next object — or the next batch, or the next cluster — after which
// the reference is spliced to the fresh replica and later calls are
// direct.
//
// # Model
//
// An OBIWAN object is a pointer to a struct registered with RegisterType.
// Objects reference each other only through *Ref fields; everything else
// in the struct is the object's replicable state:
//
//	type Doc struct {
//		Title string
//		Next  *obiwan.Ref
//	}
//	func (d *Doc) Read() string { return d.Title }
//
//	func init() { obiwan.MustRegisterType("app.Doc", (*Doc)(nil)) }
//
// A Site is one process. The master site builds the graph and binds its
// root in a name server; a client site looks the root up and works with
// it — over RMI, on replicas, or mixed:
//
//	server, _ := obiwan.NewSite("server", network, obiwan.WithNameServer("ns"))
//	head := &Doc{Title: "hello"}
//	_ = server.Bind("docs/head", head)
//
//	mobile, _ := obiwan.NewSite("mobile", network, obiwan.WithNameServer("ns"))
//	ref, _ := mobile.Lookup("docs/head")
//	out, _ := ref.Invoke("Read")          // faults the object in, invokes locally
//	doc, _ := obiwan.Deref[*Doc](ref)     // typed access, no indirection
//
// Replication granularity is a per-demand decision (GetSpec): one object
// at a time, a batch of k (each individually updatable), a cluster of k
// (one proxy pair, updated as a unit), or the whole transitive closure.
//
// Mobility is first-class: replicas keep working while disconnected,
// modifications are tracked, and Site.SyncDirty / the txn package push
// them back after reconnection.
package obiwan

import (
	"fmt"
	"reflect"

	"obiwan/internal/admin"
	"obiwan/internal/consistency"
	"obiwan/internal/dissemination"
	"obiwan/internal/eventual"
	"obiwan/internal/fleet"
	"obiwan/internal/heap"
	"obiwan/internal/invoke"
	"obiwan/internal/nameserver"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/platgc"
	"obiwan/internal/qos"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/site"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
	"obiwan/internal/txn"
)

// Core types.
type (
	// Site is one OBIWAN process: heap, RMI runtime, replication engine.
	Site = site.Site
	// SiteOption configures NewSite.
	SiteOption = site.Option
	// Ref is the reference slot objects hold in place of direct pointers
	// to other OBIWAN objects.
	Ref = objmodel.Ref
	// OID is a global object identity.
	OID = objmodel.OID
	// InvocationMode selects RMI vs replica vs automatic per reference.
	InvocationMode = objmodel.InvocationMode
	// GetSpec parameterizes a replication demand (mode, batch, depth,
	// clustering).
	GetSpec = replication.GetSpec
	// ReplicationMode is incremental or transitive closure.
	ReplicationMode = replication.Mode
	// Descriptor names a remotely reachable object (what name servers
	// store).
	Descriptor = replication.Descriptor
	// Addr is a transport endpoint address.
	Addr = transport.Addr
	// Network is the message transport between sites.
	Network = transport.Network
	// LinkProfile describes a simulated link's quality of service.
	LinkProfile = netsim.Profile
	// RemoteRef is a low-level RMI object reference.
	RemoteRef = rmi.RemoteRef
	// RemoteError is an error raised by the remote side of a call.
	RemoteError = rmi.RemoteError
	// HeapEntry is per-object heap metadata (role, version, provider).
	HeapEntry = heap.Entry
	// GCStats is the platform-object (proxy) lifecycle ledger snapshot.
	GCStats = platgc.Stats
	// TxnManager coordinates optimistic transactions at a site.
	TxnManager = txn.Manager
	// Txn is one optimistic, disconnection-tolerant transaction.
	Txn = txn.Txn
	// Publisher disseminates master updates to subscribed sites.
	Publisher = dissemination.Publisher
	// Applier applies disseminated updates to local replicas.
	Applier = dissemination.Applier
	// Update is one disseminated state change.
	Update = dissemination.Update
	// QoSMonitor estimates per-peer link quality from RMI round trips.
	QoSMonitor = qos.Monitor
	// NameServer is the registry server type (embed or run standalone).
	NameServer = nameserver.Server
	// Prefetcher resolves object faults in the background, hiding
	// incremental replication's latency (the paper's footnote 3).
	Prefetcher = replication.Prefetcher
)

// Invocation modes (per Ref, switchable at run time).
const (
	// ModeLocal replicates on first use and invokes locally (default).
	ModeLocal = objmodel.ModeLocal
	// ModeRemote always invokes the master over RMI.
	ModeRemote = objmodel.ModeRemote
	// ModeAuto lets the QoS crossover model decide.
	ModeAuto = objmodel.ModeAuto
)

// Replication modes.
const (
	// Incremental ships the demanded object plus at most Batch-1 more.
	Incremental = replication.Incremental
	// Transitive ships the whole reachability graph in one demand.
	Transitive = replication.Transitive
)

// DefaultSpec replicates one object per fault — the paper's most flexible
// alternative.
var DefaultSpec = replication.DefaultSpec

// Simulated link profiles (see netsim for the model).
var (
	// Loopback models colocated processes.
	Loopback = netsim.Loopback
	// LAN10 is the paper's 10 Mb/s Ethernet testbed (null RMI ≈ 2.8 ms).
	LAN10 = netsim.LAN10
	// WAN models a wide-area Internet path of the era.
	WAN = netsim.WAN
	// Wireless models a GPRS-era mobile link: thin, slow, lossy.
	Wireless = netsim.Wireless
)

// NewSite starts an OBIWAN site named name on network.
var NewSite = site.New

// Site options.
var (
	// WithSiteID fixes the OID prefix minted by the site.
	WithSiteID = site.WithSiteID
	// WithNameServer points the site at a name server address.
	WithNameServer = site.WithNameServer
	// WithPolicy installs a master-side consistency policy.
	WithPolicy = site.WithPolicy
	// WithInvalidation enables invalidation-based consistency.
	WithInvalidation = site.WithInvalidation
	// WithLease enables client-side replica leases.
	WithLease = site.WithLease
	// WithDefaultSpec sets the spec Lookup uses.
	WithDefaultSpec = site.WithDefaultSpec
	// WithFetchFactor tunes the ModeAuto crossover.
	WithFetchFactor = site.WithFetchFactor
	// WithCallTimeout sets the RMI call timeout.
	WithCallTimeout = site.WithCallTimeout
	// WithRetry sets the RMI retry policy for the site's outbound calls.
	WithRetry = site.WithRetry
	// WithDurability makes the site crash-durable: masters, dirty
	// replicas, exports, and name bindings journal to a write-ahead log
	// in dir, and NewSite over the same dir recovers them under a fresh
	// incarnation.
	WithDurability = site.WithDurability
	// WithTelemetry injects a custom telemetry hub (e.g. with an
	// injected clock for deterministic traces). Sites default to an
	// enabled hub named after themselves.
	WithTelemetry = site.WithTelemetry
	// WithoutTelemetry disables causal tracing and metrics for the site.
	WithoutTelemetry = site.WithoutTelemetry
)

// Telemetry: causal traces across the demand protocol plus per-site
// metrics, exported live over the admin service (DESIGN.md §7).
type (
	// TelemetryHub bundles one site's tracer and metrics registry.
	TelemetryHub = telemetry.Hub
	// SpanContext is the causal identity carried in RMI call frames.
	SpanContext = telemetry.SpanContext
	// MetricsSnapshot is a site's exported metrics state.
	MetricsSnapshot = telemetry.MetricsSnapshot
	// TraceDump is a site's exported recent spans.
	TraceDump = telemetry.TraceDump
	// ObjectProfile is one object's replication profile: faults, demand
	// depth and bytes, LMI/RMI split, serve and put accounting.
	ObjectProfile = telemetry.ObjectProfile
	// ProfileSnapshot is a site's top-K hot-object profile export.
	ProfileSnapshot = telemetry.ProfileSnapshot
	// FlightEvent is one entry in a site's flight recorder.
	FlightEvent = telemetry.FlightEvent
	// FlightDump is a stored flight-recorder ring — the last protocol,
	// retry, and WAL events before a failure or recovery.
	FlightDump = telemetry.FlightDump
	// WatchChunk is one streamed telemetry poll: new spans since the
	// watcher's cursor plus the site's current metrics (Site.WatchPeer).
	WatchChunk = admin.WatchChunk
)

var (
	// NewTelemetryHub builds a hub (install with WithTelemetry).
	NewTelemetryHub = telemetry.NewHub
	// BuildTraceTrees links span dumps from several sites into rooted
	// causal trees.
	BuildTraceTrees = telemetry.BuildTrees
	// FormatTraceTree renders one tree as an indented listing.
	FormatTraceTree = telemetry.FormatTree
)

// Critical-path attribution (DESIGN.md §13): spans carry typed phase
// segments, the slowest causal chain of each trace is extracted with
// per-phase time attribution, and tail exemplars tie a histogram's worst
// samples to the traces that explain them.
type (
	// PhaseSegment attributes part of a span's self-time to one typed
	// pipeline phase (queue, net, serve, assemble, apply, fsync, ...).
	PhaseSegment = telemetry.PhaseSegment
	// PathStep is one span on a critical path, with its self-time.
	PathStep = telemetry.PathStep
	// CriticalPath is the slowest causal chain through one trace, with
	// aggregate per-phase attribution.
	CriticalPath = telemetry.CriticalPath
	// SlowTrace ties a tail exemplar to the spans that explain it.
	SlowTrace = telemetry.SlowTrace
	// AttributionProfile aggregates critical paths into per-phase time
	// distributions — the fleet's "where does p99 go" answer.
	AttributionProfile = telemetry.AttributionProfile
)

var (
	// ExtractCriticalPath walks one trace tree and returns its slowest
	// causal chain with per-phase attribution.
	ExtractCriticalPath = telemetry.ExtractCriticalPath
	// NewAttributionBuilder accumulates critical paths into a profile.
	NewAttributionBuilder = telemetry.NewAttributionBuilder
)

// RetryPolicy bounds how outbound RMI calls are retried: attempt count,
// exponential backoff (with jitter and ceiling), and optional per-try
// timeout, all under the overall call timeout.
type RetryPolicy = rmi.RetryPolicy

// Retry policy constructors (install with WithRetry).
var (
	// DefaultRetryPolicy is the policy sites run with unless overridden.
	DefaultRetryPolicy = rmi.DefaultRetryPolicy
	// NoRetry fails calls fast on the first transient error.
	NoRetry = rmi.NoRetry
)

// ErrUnavailable marks a demand/put/refresh that exhausted its retries
// against an unreachable provider — the signal to keep working on local
// replicas and SyncDirty after reconnection.
var ErrUnavailable = replication.ErrUnavailable

// Master groups: consensus-replicated master state across a small static
// set of sites, surviving permanent loss of any minority with transparent
// leader failover (DESIGN.md §10).
type (
	// GroupConfig configures a site's master-group membership (install
	// with WithMasterGroup; identical on every member).
	GroupConfig = site.GroupConfig
	// MasterGroup is a grouped site's handle on its group: leadership
	// queries, WaitLeader/WaitServing, and the consensus node.
	MasterGroup = site.Group
	// NotLeaderError is the typed redirect a group follower answers
	// demands and puts with; Hint names the member to retry against.
	// The replication layer follows it automatically — applications see
	// it only when every member is unreachable.
	NotLeaderError = replication.NotLeaderError
)

// WithMasterGroup makes the site a member of a consensus-replicated
// master group.
var WithMasterGroup = site.WithMasterGroup

// ErrNotLeader matches (errors.Is) any NotLeaderError.
var ErrNotLeader = replication.ErrNotLeader

// NotLeaderHint extracts the redirect hint from an error, local or
// carried across RMI.
var NotLeaderHint = replication.NotLeaderHint

// Consistency policies (install with WithPolicy).
type (
	// LastWriterWins accepts every update (the paper's default).
	LastWriterWins = consistency.LastWriterWins
	// FirstWriterWins rejects updates based on stale versions.
	FirstWriterWins = consistency.FirstWriterWins
)

// ErrConflict is returned when a consistency policy rejects an update.
var ErrConflict = consistency.ErrConflict

// ErrTxnConflict is returned by Txn.Commit / TxnManager.FlushPending when a
// transaction was rolled back; it wraps the rejecting policy's error.
var ErrTxnConflict = txn.ErrConflict

// Weakly-connected replication (DESIGN.md §11): sites built WithEventual
// carry an ordered log of deterministic update functions. Updates apply
// tentatively the moment they are appended — fully disconnected — and
// become stable when the object's primary assigns them a commit position;
// pairwise anti-entropy sessions (Site.AntiEntropy) exchange version
// vectors and ship missing updates until every site holds the identical
// committed prefix.
type (
	// UpdateLog is a site's weakly-connected update store (Site.Eventual):
	// the ordered log, the committed/tentative division, the version
	// vector, and the truncation frontier table.
	UpdateLog = eventual.Store
	// UpdateID stamps one update <logical clock, authoring site>.
	UpdateID = eventual.UpdateID
	// UpdateFunc is a deterministic, registered update function: it
	// mutates obj from args and may decline by returning an error (a
	// decline is deterministic too, and commits as a no-op).
	UpdateFunc = eventual.UpdateFunc
	// SyncStats summarizes what one anti-entropy session absorbed.
	SyncStats = eventual.SyncStats
	// UpdateLogStats counts an update log's lifetime activity: tentative
	// applies, commits, rollback/replay events, declines, truncations.
	UpdateLogStats = eventual.StoreStats
)

var (
	// WithEventual enables weakly-connected replication for the site;
	// objects opt in per object with Site.Track.
	WithEventual = site.WithEventual
	// RegisterUpdate registers an update function under a stable name
	// (before any replication; an init function is idiomatic). Every
	// site must register the same functions under the same names.
	RegisterUpdate = eventual.RegisterUpdate
	// MustRegisterUpdate is RegisterUpdate, panicking on error.
	MustRegisterUpdate = eventual.MustRegisterUpdate
)

var (
	// ErrNoEventual marks weakly-connected operations on sites built
	// without WithEventual.
	ErrNoEventual = site.ErrNoEventual
	// ErrTentative marks a raw state put rejected because the object is
	// managed by the update log (mutate it with Site.Apply instead).
	ErrTentative = consistency.ErrTentative
	// ErrCommitGap marks a commit record that would leave a hole in an
	// object's commit sequence; the whole batch is rejected.
	ErrCommitGap = eventual.ErrCommitGap
	// ErrBadUpdateRecord marks a torn or corrupted update-log record —
	// in a WAL after a crash or in a sync batch off the wire. Decoding
	// fails closed; no partial update is ever applied.
	ErrBadUpdateRecord = eventual.ErrBadRecord
	// ErrTooFarBehind marks a dissemination Pull from below the
	// publisher's retained log; the subscriber resynchronizes with a
	// full state fetch instead of an incremental batch.
	ErrTooFarBehind = dissemination.ErrTooFarBehind
)

// Fleet observatory (DESIGN.md §12): a site built WithFleet scrapes the
// admin service of every listed peer over RMI, folds the snapshots into
// one order-independent aggregate (merged metrics, cross-site top-K hot
// objects), and evaluates a declarative SLO watchdog over the federated
// stream. Inspect with `obiwan-admin fleet top` / `fleet alerts`.
type (
	// FleetCollector is the observatory site's handle (Site.Fleet):
	// ScrapeOnce, the background Start/Stop loop, and the alert backlog.
	FleetCollector = fleet.Collector
	// FleetRule is one declarative SLO condition over the federated
	// stream (p99 tail, counter lag, rate-of-change, gauge threshold).
	FleetRule = fleet.Rule
	// FleetSnapshot is the aggregated fleet view: per-site observations
	// plus the merged metrics and cross-site hot-object ranking.
	FleetSnapshot = telemetry.FleetSnapshot
	// FleetAlert is one watchdog firing: rule, offending site, value.
	FleetAlert = telemetry.Alert
)

// Watchdog rule kinds (FleetRule.Kind).
const (
	// RuleP99 fires when a histogram's p99 exceeds Threshold.
	RuleP99 = fleet.RuleP99
	// RuleLag fires when counter Metric exceeds counter Minus by more
	// than Threshold.
	RuleLag = fleet.RuleLag
	// RuleRate fires when counter Metric grew by more than Threshold
	// since the previous scrape.
	RuleRate = fleet.RuleRate
	// RuleGauge fires when a gauge exceeds Threshold.
	RuleGauge = fleet.RuleGauge
)

var (
	// WithFleet makes the site a fleet observatory over the given peers.
	WithFleet = site.WithFleet
	// FleetDefaultRules is the stock watchdog rule set: RMI p99 latency,
	// commit-frontier lag, election churn, replica staleness.
	FleetDefaultRules = fleet.DefaultRules
	// FleetWithRules overrides the watchdog rule set.
	FleetWithRules = fleet.WithRules
	// FleetWithTopK sets the aggregated hot-object ranking depth.
	FleetWithTopK = fleet.WithTopK
)

// Networks.
var (
	// NewMemNetwork builds the in-process simulated network with the given
	// default link profile.
	NewMemNetwork = transport.NewMemNetwork
	// NewTCPNetwork builds the real TCP transport.
	NewTCPNetwork = transport.NewTCPNetwork
)

// MemNetwork is the simulated in-process network (profile switches,
// disconnection, partitions).
type MemNetwork = transport.MemNetwork

// RegisterType registers an application object type under a stable wire
// name. Call it once per type, before any replication (an init function is
// the conventional place).
func RegisterType(name string, sample any) error {
	return objmodel.RegisterType(name, sample)
}

// MustRegisterType is RegisterType but panics on error.
func MustRegisterType(name string, sample any) {
	objmodel.MustRegisterType(name, sample)
}

// Deref resolves ref — replicating its target on first use — and asserts
// it to T: typed, indirection-free access to the replica.
func Deref[T any](ref *Ref) (T, error) {
	return objmodel.Deref[T](ref)
}

// ServeNameServer exports a fresh name server on rt (use a dedicated
// runtime so it lands at the well-known id) and returns it.
func ServeNameServer(rt *rmi.Runtime) (*NameServer, RemoteRef, error) {
	return nameserver.Serve(rt)
}

// NewRuntime builds a bare RMI runtime — needed only to host a standalone
// name server in-process; sites build their own.
var NewRuntime = rmi.NewRuntime

// NewTxnManager builds a transaction manager over a site.
func NewTxnManager(s *Site) *TxnManager {
	return txn.NewManager(s.Engine())
}

// NewPublisher builds an update publisher over a master site, delivering
// through deliver (see dissemination.Deliver).
func NewPublisher(s *Site, deliver dissemination.Deliver) *Publisher {
	return dissemination.NewPublisher(s.Engine(), deliver)
}

// NewApplier builds a dissemination applier over a subscriber site.
func NewApplier(s *Site) *Applier {
	return dissemination.NewApplier(s.Engine())
}

// Convert adapts v — which may be a native Go value (local invocation) or
// a canonical wire value (remote invocation: int64/uint64/float64/string/
// []byte/[]any/map[string]any/*Struct) — to type T. It is the conversion
// primitive obicomp-generated proxies use on invocation results.
func Convert[T any](v any) (T, error) {
	var zero T
	rv, err := invoke.ConvertArg(v, reflect.TypeOf(&zero).Elem())
	if err != nil {
		return zero, err
	}
	out, ok := rv.Interface().(T)
	if !ok {
		return zero, fmt.Errorf("obiwan: cannot convert %T to %T", v, zero)
	}
	return out, nil
}
