package obiwan_test

import (
	"fmt"

	"obiwan"
)

// Task is the object type used by the examples below.
type Task struct {
	Title string
	Done  bool
	Next  *obiwan.Ref
}

// Describe renders the task.
func (t *Task) Describe() string {
	if t.Done {
		return "[x] " + t.Title
	}
	return "[ ] " + t.Title
}

// Finish marks the task done.
func (t *Task) Finish() { t.Done = true }

func init() {
	obiwan.MustRegisterType("example.Task", (*Task)(nil))
}

// Example shows the complete OBIWAN flow: a master site binds an object
// graph, a mobile site replicates it incrementally through object faults,
// works locally, and pushes an edit back.
func Example() {
	network := obiwan.NewMemNetwork(obiwan.Loopback)

	nsrt, _ := obiwan.NewRuntime(network, "ns")
	defer nsrt.Close()
	_, _, _ = obiwan.ServeNameServer(nsrt)

	server, _ := obiwan.NewSite("server", network, obiwan.WithNameServer("ns"))
	defer server.Close()
	mobile, _ := obiwan.NewSite("mobile", network, obiwan.WithNameServer("ns"))
	defer mobile.Close()

	// The master graph: two linked tasks.
	first := &Task{Title: "write the paper"}
	second := &Task{Title: "run the experiments"}
	first.Next, _ = server.NewRef(second)
	_ = server.Bind("tasks/today", first)

	// The mobile site replicates on first use.
	ref, _ := mobile.Lookup("tasks/today")
	out, _ := ref.Invoke("Describe")
	fmt.Println(out[0])

	// Typed access; walking the reference faults the next object in.
	task, _ := obiwan.Deref[*Task](ref)
	next, _ := obiwan.Deref[*Task](task.Next)
	fmt.Println(next.Describe())

	// Edit locally, push back to the master.
	task.Finish()
	_ = mobile.Put(task)
	fmt.Println(first.Describe())

	// Output:
	// [ ] write the paper
	// [ ] run the experiments
	// [x] write the paper
}

// ExampleRef_SetMode shows the run-time invocation decision: the same
// reference switches between RMI to the master and local replica use.
func ExampleRef_SetMode() {
	network := obiwan.NewMemNetwork(obiwan.Loopback)
	server, _ := obiwan.NewSite("server", network)
	defer server.Close()
	client, _ := obiwan.NewSite("client", network)
	defer client.Close()

	master := &Task{Title: "shared"}
	desc, _ := server.Export(master)
	ref := client.Engine().RefFromDescriptor(desc, obiwan.DefaultSpec)

	// Remote: the master is invoked over RMI; nothing replicates.
	ref.SetMode(obiwan.ModeRemote)
	_, _ = ref.Invoke("Finish")
	fmt.Println("master done:", master.Done, "| replicated:", ref.IsResolved())

	// Local: the object faults in and further calls are local.
	ref.SetMode(obiwan.ModeLocal)
	out, _ := ref.Invoke("Describe")
	fmt.Println(out[0], "| replicated:", ref.IsResolved())

	// Output:
	// master done: true | replicated: false
	// [x] shared | replicated: true
}

// ExampleGetSpec shows replication granularities: one demand can ship a
// single object, a cluster, or the whole graph.
func ExampleGetSpec() {
	network := obiwan.NewMemNetwork(obiwan.Loopback)
	server, _ := obiwan.NewSite("server", network)
	defer server.Close()

	// A chain of five tasks.
	tasks := make([]*Task, 5)
	for i := range tasks {
		tasks[i] = &Task{Title: fmt.Sprintf("t%d", i)}
	}
	for i := 0; i < 4; i++ {
		tasks[i].Next, _ = server.NewRef(tasks[i+1])
	}
	desc, _ := server.Export(tasks[0])

	for _, spec := range []obiwan.GetSpec{
		{Mode: obiwan.Incremental, Batch: 1},
		{Mode: obiwan.Incremental, Batch: 2, Clustered: true},
		{Mode: obiwan.Transitive},
	} {
		client, _ := obiwan.NewSite(fmt.Sprintf("c-%v-%d-%v", spec.Mode, spec.Batch, spec.Clustered), network)
		ref := client.Engine().RefFromDescriptor(desc, spec)
		_, _ = ref.Resolve()
		fmt.Printf("%v → %d object(s) after one demand\n", spec, client.Heap().Len())
		_ = client.Close()
	}

	// Output:
	// {incremental 1 0 false} → 1 object(s) after one demand
	// {incremental 2 0 true} → 2 object(s) after one demand
	// {transitive 0 0 false} → 5 object(s) after one demand
}
