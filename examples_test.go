package obiwan_test

import (
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestExamplesRun executes each runnable example end to end and checks a
// line of its expected narration — the examples double as system tests of
// the public API.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples exercise simulated links with real delays")
	}
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate repo root")
	}
	root := filepath.Dir(thisFile)

	cases := []struct {
		dir  string
		want []string
	}{
		{"quickstart", []string{
			"S1: walked to C  (heap: 3, proxy-outs live: 0, reclaimed: 3)",
			"1000 more invocations, 0 RMI calls issued",
			`master A body after put: "alpha, edited at S1"`,
		}},
		{"disconnected", []string{
			"laptop: committed offline (txn status: pending, pending: 1)",
			"laptop: conflict — colleague updated the cluster first; refreshing and retrying",
			"office: order[0] now: plant-7: replace valve [done: new valve fitted, tested at 6 bar]",
		}},
		{"collabdoc", []string{
			"bob: clustered the whole document in 1 round trip(s)",
			"bob: conflict (alice was first) — refreshing and retrying",
			"Also, networks are slow.",
		}},
		{"worldgame", []string{
			"area of interest holds 3 regions (1 round trips)",
			"ada: now sees village (ada, bo)",
			"the walk needed 1 extra round trip(s)",
			"server: village (bo) / hills (ada)",
		}},
		{"adaptive", []string{
			"switching to local replica",
			"auto: issued 2 RMI calls in total",
			"dashboard (offline) still reads",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+tc.dir)
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q\n%s", want, out)
				}
			}
		})
	}
}
