package obiwan_test

import (
	"errors"
	"strings"
	"testing"

	"obiwan"
	"obiwan/examples/collabdoc/docmodel"
)

// These tests drive the obicomp-generated typed proxies (see
// examples/collabdoc/docmodel/obiwan_gen.go) against a live deployment:
// the generated code is not just compiled but exercised over both the
// local (fault + LMI) and remote (RMI) invocation paths.

func deployDoc(t *testing.T) (*obiwan.Site, *obiwan.Site, *docmodel.Document) {
	t.Helper()
	network := obiwan.NewMemNetwork(obiwan.Loopback)
	nsrt, err := obiwan.NewRuntime(network, "ns")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = nsrt.Close() })
	if _, _, err := obiwan.ServeNameServer(nsrt); err != nil {
		t.Fatal(err)
	}
	hub, err := obiwan.NewSite("hub", network, obiwan.WithNameServer("ns"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })
	editor, err := obiwan.NewSite("editor", network, obiwan.WithNameServer("ns"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = editor.Close() })

	master := &docmodel.Document{Title: "Spec", Revision: 1}
	intro := &docmodel.Section{Name: "Intro", Text: "one two three"}
	if master.First, err = hub.NewRef(intro); err != nil {
		t.Fatal(err)
	}
	if err := hub.Bind("doc", master); err != nil {
		t.Fatal(err)
	}
	return hub, editor, master
}

func TestGeneratedProxyLocalPath(t *testing.T) {
	_, editor, _ := deployDoc(t)
	proxy, err := docmodel.LookupDocument(editor, "doc")
	if err != nil {
		t.Fatal(err)
	}
	if got := proxy.Heading(); got != "Spec (rev 1)" {
		t.Fatalf("heading: %q", got)
	}
	if !proxy.Ref().IsResolved() {
		t.Fatal("local path should have replicated")
	}
	// Section access through the replica's ref, wrapped in the typed proxy.
	d, err := obiwan.Deref[*docmodel.Document](proxy.Ref())
	if err != nil {
		t.Fatal(err)
	}
	sec := docmodel.NewSectionProxy(d.First)
	if got := sec.WordCount(); got != 3 {
		t.Fatalf("word count: %d", got)
	}
	if got := sec.Render(); !strings.Contains(got, "## Intro") {
		t.Fatalf("render: %q", got)
	}
}

func TestGeneratedProxyRemotePath(t *testing.T) {
	_, editor, master := deployDoc(t)
	proxy, err := docmodel.LookupDocument(editor, "doc")
	if err != nil {
		t.Fatal(err)
	}
	proxy.Ref().SetMode(obiwan.ModeRemote)
	// A void method over RMI mutates the master directly.
	proxy.Retitle("Spec v2")
	if master.Title != "Spec v2" || master.Revision != 2 {
		t.Fatalf("master after remote retitle: %+v", master)
	}
	if proxy.Ref().IsResolved() {
		t.Fatal("remote path must not replicate")
	}
	if got := proxy.Heading(); got != "Spec v2 (rev 2)" {
		t.Fatalf("remote heading: %q", got)
	}
}

func TestGeneratedProxyErrorChannel(t *testing.T) {
	// IBook-style (value, error) methods are exercised via the obicomp
	// corpus in cmd/obicomp; here we check the infrastructure-error panic
	// contract of void methods on a dead link.
	network := obiwan.NewMemNetwork(obiwan.Loopback)
	nsrt, err := obiwan.NewRuntime(network, "ns")
	if err != nil {
		t.Fatal(err)
	}
	defer nsrt.Close()
	if _, _, err := obiwan.ServeNameServer(nsrt); err != nil {
		t.Fatal(err)
	}
	hub, err := obiwan.NewSite("hub", network, obiwan.WithNameServer("ns"))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	editor, err := obiwan.NewSite("editor", network, obiwan.WithNameServer("ns"))
	if err != nil {
		t.Fatal(err)
	}
	defer editor.Close()
	if err := hub.Bind("doc", &docmodel.Document{Title: "x"}); err != nil {
		t.Fatal(err)
	}
	proxy, err := docmodel.LookupDocument(editor, "doc")
	if err != nil {
		t.Fatal(err)
	}
	network.Disconnect("editor", "hub")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("void proxy method on dead link must panic")
		}
		if !strings.Contains(r.(string), "obiwan proxy: Document.Retitle") {
			t.Fatalf("panic payload: %v", r)
		}
	}()
	proxy.Retitle("unreachable")
}

func TestConvertHelper(t *testing.T) {
	// The Convert primitive behind generated proxies handles both native
	// and wire-canonical inputs.
	if v, err := obiwan.Convert[int](int64(7)); err != nil || v != 7 {
		t.Fatalf("int64→int: %v %v", v, err)
	}
	if v, err := obiwan.Convert[int](7); err != nil || v != 7 {
		t.Fatalf("int→int: %v %v", v, err)
	}
	if v, err := obiwan.Convert[[]string]([]any{"a", "b"}); err != nil || len(v) != 2 {
		t.Fatalf("[]any→[]string: %v %v", v, err)
	}
	if _, err := obiwan.Convert[int]("nope"); err == nil {
		t.Fatal("string→int must fail")
	}
	var nilErr error
	if _, err := obiwan.Convert[int](nilErr); err == nil {
		t.Fatal("nil→int must fail")
	}
}

func TestErrSentinelsExported(t *testing.T) {
	if obiwan.ErrConflict == nil || obiwan.ErrTxnConflict == nil {
		t.Fatal("sentinels missing")
	}
	if errors.Is(obiwan.ErrConflict, obiwan.ErrTxnConflict) {
		t.Fatal("sentinels must be distinct")
	}
}

func TestGeneratedLifecycleHelpers(t *testing.T) {
	hub, editor, master := deployDoc(t)
	proxy, err := docmodel.LookupDocument(editor, "doc")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := obiwan.Deref[*docmodel.Document](proxy.Ref())
	if err != nil {
		t.Fatal(err)
	}
	doc.Title = "edited via helper"
	if err := proxy.Put(editor); err != nil {
		t.Fatal(err)
	}
	if master.Title != "edited via helper" {
		t.Fatalf("master: %q", master.Title)
	}
	master.Title = "changed at hub"
	if err := hub.MarkUpdated(master); err != nil {
		t.Fatal(err)
	}
	if err := proxy.Refresh(editor); err != nil {
		t.Fatal(err)
	}
	if doc.Title != "changed at hub" {
		t.Fatalf("after refresh: %q", doc.Title)
	}
}
